(* Tests for the failure-detector oracles and the class checkers: each
   oracle's history must be accepted by its class checker (across seeds,
   behaviours and crash patterns), the checkers must reject histories that
   genuinely violate the class, and the query-class semantics (triviality /
   safety / liveness windows) must hold pointwise. *)

open Setagree_util
open Setagree_dsys
open Setagree_fd

let check = Alcotest.(check bool)

let gst = 30.0
let horizon = 120.0
let deadline = 80.0

let mk ?(n = 7) ?(t = 3) ~seed () = Sim.create ~horizon ~n ~t ~seed ()

let with_crashes sim ~crashes =
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes; window = (0.0, 20.0) }) ~n:(Sim.n sim)
       ~t:(Sim.t_bound sim) rng)

let run_watching sim read =
  let mon = Monitor.watch sim ~every:0.5 ~read () in
  Sim.ticker sim ~every:0.5;
  ignore (Sim.run sim);
  mon

(* --- suspector classes --- *)

let test_es_x_membership () =
  List.iter
    (fun (seed, x, crashes, behavior) ->
      let sim = mk ~seed () in
      with_crashes sim ~crashes;
      let fd, _info = Oracle.es_x sim ~x ~behavior () in
      let mon = run_watching sim (fun i -> fd.Iface.suspected i) in
      let v = Check.es_x sim ~x ~deadline mon in
      if not (Check.verdict_ok v) then
        Alcotest.failf "seed=%d x=%d crashes=%d: %s" seed x crashes
          (String.concat "; " v.notes))
    [
      (1, 2, 2, Behavior.stormy ~gst);
      (2, 3, 3, Behavior.stormy ~gst);
      (3, 4, 1, Behavior.calm ~gst);
      (4, 7, 0, Behavior.stormy ~gst);
      (5, 1, 3, Behavior.stormy ~gst);
      (6, 2, 2, Behavior.make ~noise:0.5 ~slander:0.4 ~gst ());
    ]

let test_es_x_is_weaker_grid () =
  (* A ◇S_x history is also a legal ◇S_{x'} history for x' <= x. *)
  let sim = mk ~seed:9 () in
  with_crashes sim ~crashes:2;
  let fd, _ = Oracle.es_x sim ~x:4 ~behavior:(Behavior.stormy ~gst) () in
  let mon = run_watching sim (fun i -> fd.Iface.suspected i) in
  List.iter
    (fun x' ->
      check (Printf.sprintf "scope %d" x') true
        (Check.verdict_ok (Check.es_x sim ~x:x' ~deadline mon)))
    [ 1; 2; 3; 4 ]

let test_s_x_membership () =
  List.iter
    (fun (seed, x, crashes) ->
      let sim = mk ~seed () in
      with_crashes sim ~crashes;
      let fd, _ = Oracle.s_x sim ~x ~behavior:(Behavior.stormy ~gst) () in
      let mon = run_watching sim (fun i -> fd.Iface.suspected i) in
      let v = Check.s_x sim ~x ~deadline mon in
      if not (Check.verdict_ok v) then
        Alcotest.failf "seed=%d x=%d: %s" seed x (String.concat "; " v.notes))
    [ (11, 2, 2); (12, 3, 3); (13, 5, 1) ]

let test_perfect_p () =
  let sim = mk ~seed:21 () in
  with_crashes sim ~crashes:3;
  let fd = Oracle.perfect_p sim in
  let mon = run_watching sim (fun i -> fd.Iface.suspected i) in
  (* P = completeness + perpetual strong accuracy: nobody ever suspects a
     live process; in particular it is an S_n history. *)
  check "completeness" true (Check.verdict_ok (Check.strong_completeness sim ~deadline mon));
  check "S_n accuracy" true (Check.verdict_ok (Check.s_x sim ~x:(Sim.n sim) ~deadline mon))

let test_eventually_p () =
  let sim = mk ~seed:22 () in
  with_crashes sim ~crashes:2;
  let fd = Oracle.eventually_p sim ~behavior:(Behavior.stormy ~gst) () in
  let mon = run_watching sim (fun i -> fd.Iface.suspected i) in
  check "◇P ⊆ ◇S_n" true (Check.verdict_ok (Check.es_x sim ~x:(Sim.n sim) ~deadline mon))

let test_crashed_reader_suspects_nobody () =
  let sim = mk ~seed:23 () in
  Sim.install_crashes sim [ (2, 10.0) ];
  let fd, _ = Oracle.es_x sim ~x:3 ~behavior:(Behavior.stormy ~gst) () in
  Sim.ticker sim ~every:1.0;
  ignore (Sim.run ~stop_when:(fun () -> Sim.now sim > 50.0) sim);
  check "dead module outputs empty" true (Pidset.is_empty (fd.Iface.suspected 2))

let test_checker_rejects_incompleteness () =
  (* A suspector that never suspects anyone fails completeness as soon as
     someone crashes. *)
  let sim = mk ~seed:24 () in
  Sim.install_crashes sim [ (1, 5.0) ];
  let mon = run_watching sim (fun _ -> Pidset.empty) in
  check "incomplete rejected" false
    (Check.verdict_ok (Check.strong_completeness sim ~deadline mon))

let test_checker_rejects_bad_accuracy () =
  (* Everybody suspects every correct process forever: no protected leader
     exists for any x >= 1 (self-inclusion breaks it too). *)
  let sim = mk ~seed:25 () in
  let all = Pidset.full ~n:(Sim.n sim) in
  let mon = run_watching sim (fun _ -> all) in
  check "no accuracy" false
    (Check.verdict_ok (Check.limited_scope_accuracy sim ~x:2 ~from:0.0 mon))

let test_accuracy_scope_threshold () =
  (* Exactly 3 processes (incl. the leader) protect p0; accuracy holds for
     x <= 3 and fails for x = 4. *)
  let sim = mk ~seed:26 () in
  let protectors = Pidset.of_list [ 0; 1; 2 ] in
  let everyone = Pidset.full ~n:7 in
  (* Protectors suspect everyone but p0 (and themselves); the rest suspect
     everyone (but themselves).  Only p0 has protectors, exactly three. *)
  let read i =
    let base = Pidset.remove i everyone in
    if Pidset.mem i protectors then Pidset.remove 0 base else base
  in
  let mon = run_watching sim read in
  check "x=3 ok" true
    (Check.verdict_ok (Check.limited_scope_accuracy sim ~x:3 ~from:0.0 mon));
  check "x=4 fails" false
    (Check.verdict_ok (Check.limited_scope_accuracy sim ~x:4 ~from:0.0 mon))

(* --- leader classes --- *)

let test_omega_z_membership () =
  List.iter
    (fun (seed, z, crashes) ->
      let sim = mk ~seed () in
      with_crashes sim ~crashes;
      let fd, final = Oracle.omega_z sim ~z ~behavior:(Behavior.stormy ~gst) () in
      let mon = run_watching sim (fun i -> fd.Iface.trusted i) in
      let v = Check.omega_z sim ~z ~deadline mon in
      if not (Check.verdict_ok v) then
        Alcotest.failf "seed=%d z=%d: %s" seed z (String.concat "; " v.notes);
      check "final has a correct member" true
        (not (Pidset.is_empty (Pidset.inter final (Sim.correct_set sim)))))
    [ (31, 1, 3); (32, 2, 2); (33, 3, 0); (34, 4, 3) ]

let test_omega_weaker_with_larger_z () =
  (* An Ω_z history is a legal Ω_{z'} history for z' >= z. *)
  let sim = mk ~seed:35 () in
  with_crashes sim ~crashes:2;
  let fd, _ = Oracle.omega_z sim ~z:2 ~behavior:(Behavior.stormy ~gst) () in
  let mon = run_watching sim (fun i -> fd.Iface.trusted i) in
  check "z=2 ok" true (Check.verdict_ok (Check.omega_z sim ~z:2 ~deadline mon));
  check "z=3 ok" true (Check.verdict_ok (Check.omega_z sim ~z:3 ~deadline mon));
  (* And can fail for smaller z if the final set is bigger. *)
  let final_size =
    match Monitor.final mon 0 with Some s -> Pidset.cardinal s | None -> 0
  in
  if final_size = 2 then
    check "z=1 fails on size" false (Check.verdict_ok (Check.omega_z sim ~z:1 ~deadline mon))

let test_omega_checker_rejects_disagreement () =
  let sim = mk ~seed:36 () in
  let mon = run_watching sim (fun i -> Pidset.singleton i) in
  check "divergent leaders rejected" false
    (Check.verdict_ok (Check.omega_z sim ~z:1 ~deadline mon))

let test_omega_checker_rejects_dead_leader () =
  let sim = mk ~seed:37 () in
  Sim.install_crashes sim [ (0, 5.0) ];
  let mon = run_watching sim (fun _ -> Pidset.singleton 0) in
  check "all-crashed trusted set rejected" false
    (Check.verdict_ok (Check.omega_z sim ~z:1 ~deadline mon))

let test_omega_checker_rejects_late_instability () =
  let sim = mk ~seed:38 () in
  (* Flips between two singletons forever: never stabilizes. *)
  let read _ =
    if int_of_float (Sim.now sim) mod 2 = 0 then Pidset.singleton 0 else Pidset.singleton 1
  in
  let mon = run_watching sim read in
  check "instability rejected" false (Check.verdict_ok (Check.omega_z sim ~z:1 ~deadline mon))

(* --- query classes --- *)

let query_all_sizes sim (q : Iface.querier) =
  (* Issue queries of every size from one correct observer. *)
  let n = Sim.n sim in
  let obs = Pidset.min_elt (Sim.correct_set sim) in
  Sim.spawn sim ~pid:obs (fun () ->
      while true do
        for size = 0 to n do
          ignore (q.Iface.query obs (Combi.unrank ~n ~size 0));
          ignore (q.Iface.query obs (Combi.unrank ~n ~size (Combi.binomial n size - 1)))
        done;
        Sim.sleep 1.0
      done)

let test_phi_y_membership () =
  List.iter
    (fun (seed, y, crashes, eventual) ->
      let sim = mk ~seed () in
      with_crashes sim ~crashes;
      let behavior = Behavior.stormy ~gst in
      let q, log =
        if eventual then Oracle.ephi_y sim ~y ~behavior ()
        else Oracle.phi_y sim ~y ~behavior ()
      in
      query_all_sizes sim q;
      Sim.ticker sim ~every:1.0;
      ignore (Sim.run sim);
      let v = Check.phi_y sim ~y ~eventual ~deadline log in
      if not (Check.verdict_ok v) then
        Alcotest.failf "seed=%d y=%d eventual=%b: %s" seed y eventual
          (String.concat "; " (List.filteri (fun i _ -> i < 3) v.notes)))
    [
      (41, 1, 2, false);
      (42, 2, 3, false);
      (43, 3, 3, false);
      (44, 1, 2, true);
      (45, 2, 0, true);
      (46, 3, 3, true);
    ]

let test_phi_triviality_pointwise () =
  let sim = mk ~seed:47 () in
  let t = Sim.t_bound sim in
  let y = 2 in
  let q, _ = Oracle.phi_y sim ~y ~behavior:(Behavior.stormy ~gst) () in
  (* Small sets: always true; big sets: always false — at any time, any
     noise. *)
  let small = Combi.unrank ~n:7 ~size:(t - y) 5 in
  let big = Combi.unrank ~n:7 ~size:(t + 1) 3 in
  check "small true" true (q.Iface.query 0 small);
  check "big false" false (q.Iface.query 0 big)

let test_phi_perpetual_safety_pointwise () =
  (* φ (perpetual): a meaningful-window query on a region with a live member
     is false even before gst, under heavy noise. *)
  let sim = mk ~seed:48 () in
  with_crashes sim ~crashes:2;
  let q, _ =
    Oracle.phi_y sim ~y:2 ~behavior:(Behavior.make ~noise:0.9 ~gst ()) ()
  in
  let live = Pidset.min_elt (Sim.correct_set sim) in
  let region = Pidset.add live (Pidset.random (Rng.create 5) ~n:7 ~size:1) in
  let region = if Pidset.cardinal region = 2 then region else Pidset.of_list [ live; (live + 1) mod 7 ] in
  check "never true on live region" false (q.Iface.query 0 region)

let test_ephi_can_lie_pre_gst () =
  (* ◇φ with noise 1.0: pre-gst every meaningful answer is flipped, so a
     live region is reported dead — legal for the eventual class, detected
     as a violation by the perpetual checker. *)
  let sim = mk ~seed:49 () in
  let q, log = Oracle.ephi_y sim ~y:2 ~behavior:(Behavior.make ~noise:1.0 ~gst ()) () in
  let region = Combi.unrank ~n:7 ~size:2 0 in
  let lied = q.Iface.query 0 region in
  check "pre-gst lie" true lied;
  let v_perp = Check.phi_y sim ~y:2 ~eventual:false ~deadline:0.0 log in
  check "perpetual checker flags it" false (Check.verdict_ok v_perp);
  let v_ev = Check.phi_y sim ~y:2 ~eventual:true ~deadline log in
  check "eventual checker accepts it" true (Check.verdict_ok v_ev)

let test_phi_liveness_post_gst () =
  let sim = mk ~seed:50 () in
  Sim.install_crashes sim [ (5, 2.0); (6, 3.0) ];
  let q, _ = Oracle.phi_y sim ~y:2 ~behavior:(Behavior.stormy ~gst) () in
  let dead = Pidset.of_list [ 5; 6 ] in
  Sim.ticker sim ~every:1.0;
  ignore (Sim.run ~stop_when:(fun () -> Sim.now sim >= gst +. 1.0) sim);
  check "dead region certified after gst" true (q.Iface.query 0 dead)

let test_psi_containment_enforced () =
  let sim = mk ~seed:51 () in
  let q, _ = Oracle.psi_y sim ~y:2 ~behavior:(Behavior.calm ~gst) () in
  let a = Pidset.of_list [ 0; 1 ] in
  let b = Pidset.of_list [ 0; 1; 2 ] in
  let c = Pidset.of_list [ 3; 4 ] in
  ignore (q.Iface.query 0 a);
  ignore (q.Iface.query 0 b);
  (* nested: fine *)
  check "incomparable raises" true
    (try
       ignore (q.Iface.query 0 c);
       false
     with Oracle.Psi_containment_violation _ -> true)

let test_psi_repeat_query_ok () =
  let sim = mk ~seed:52 () in
  let q, _ = Oracle.psi_y sim ~y:2 ~behavior:(Behavior.calm ~gst) () in
  let a = Pidset.of_list [ 0; 1 ] in
  ignore (q.Iface.query 0 a);
  ignore (q.Iface.query 1 a);
  check "same set repeatable" true true

let test_no_info_modules () =
  let q = Iface.no_query_info ~t:3 in
  check "small true" true (q.Iface.query 0 (Pidset.of_list [ 0; 1; 2 ]));
  check "big false" false (q.Iface.query 0 (Pidset.of_list [ 0; 1; 2; 3 ]));
  check "no suspicion" true (Pidset.is_empty (Iface.no_suspicion.Iface.suspected 0))

(* --- determinism of oracles --- *)

let test_oracle_determinism () =
  let observe () =
    let sim = mk ~seed:61 () in
    with_crashes sim ~crashes:2;
    let fd, _ = Oracle.es_x sim ~x:3 ~behavior:(Behavior.stormy ~gst) () in
    let mon = run_watching sim (fun i -> fd.Iface.suspected i) in
    List.map (fun i -> Monitor.series mon i) (List.init 7 Fun.id)
  in
  check "replay identical" true (observe () = observe ())

(* --- monitor mechanics --- *)

let test_monitor_records_changes_only () =
  let sim = mk ~seed:62 () in
  let v = ref Pidset.empty in
  Sim.schedule sim ~delay:10.0 (fun () -> v := Pidset.singleton 1);
  let mon = run_watching sim (fun _ -> !v) in
  Alcotest.(check int) "two change points" 2 (List.length (Monitor.series mon 0));
  (match Monitor.value_in_effect mon 0 ~at:5.0 with
  | Some s -> check "early value" true (Pidset.is_empty s)
  | None -> Alcotest.fail "no early value");
  (match Monitor.final mon 0 with
  | Some s -> check "final value" true (Pidset.equal s (Pidset.singleton 1))
  | None -> Alcotest.fail "no final");
  check "last change around 10" true
    (match Monitor.last_change mon 0 with Some tc -> tc >= 10.0 && tc < 11.0 | None -> false)

let test_monitor_values_after () =
  let sim = mk ~seed:63 () in
  let v = ref (Pidset.singleton 0) in
  Sim.schedule sim ~delay:10.0 (fun () -> v := Pidset.singleton 1);
  Sim.schedule sim ~delay:20.0 (fun () -> v := Pidset.singleton 2);
  let mon = run_watching sim (fun _ -> !v) in
  let after_15 = Monitor.values_after mon 0 ~from:15.0 in
  Alcotest.(check int) "value in effect + later change" 2 (List.length after_15)

(* --- parameter validation --- *)

let test_oracle_param_validation () =
  let sim = mk ~seed:65 () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "es_x x=0" true (raises (fun () -> ignore (Oracle.es_x sim ~x:0 ())));
  check "es_x x=n+1" true (raises (fun () -> ignore (Oracle.es_x sim ~x:8 ())));
  check "omega_z z=0" true (raises (fun () -> ignore (Oracle.omega_z sim ~z:0 ())));
  check "phi_y y=-1" true (raises (fun () -> ignore (Oracle.phi_y sim ~y:(-1) ())));
  check "phi_y y=t+1" true (raises (fun () -> ignore (Oracle.phi_y sim ~y:4 ())));
  let hb = Impl.install sim () in
  check "impl omega z=0" true (raises (fun () -> ignore (Impl.omega hb ~z:0)));
  check "impl querier y=t+1" true (raises (fun () -> ignore (Impl.querier hb ~y:4)))

let test_oracle_requires_correct_process () =
  (* An oracle created in a run where everybody is scheduled to crash has no
     leader to protect. *)
  let sim = Sim.create ~horizon:100.0 ~n:2 ~t:1 ~seed:66 () in
  Sim.install_crashes sim [ (0, 1.0) ];
  (* p1 correct: fine. *)
  let _ = Oracle.es_x sim ~x:1 () in
  check "ok with one correct" true true

(* --- viz --- *)

let test_viz_timeline () =
  let sim = mk ~n:7 ~seed:64 () in
  Sim.install_crashes sim [ (2, 30.0) ];
  let v = ref (Pidset.singleton 0) in
  Sim.schedule sim ~delay:60.0 (fun () -> v := Pidset.singleton 1);
  let mon = run_watching sim (fun _ -> !v) in
  let s = Viz.timeline sim mon ~width:40 () in
  check "has a row per process" true
    (List.length (String.split_on_char '\n' s) >= 7);
  check "crash marker present" true (String.contains s 'x');
  check "legend present" true
    (let rec has_sub i =
       i + 3 <= String.length s && (String.sub s i 3 = "a =" || has_sub (i + 1))
     in
     has_sub 0);
  check "two values lettered" true (String.contains s 'b')

let () =
  Alcotest.run "fd"
    [
      ( "suspectors",
        [
          Alcotest.test_case "◇S_x membership" `Quick test_es_x_membership;
          Alcotest.test_case "◇S_x downward grid" `Quick test_es_x_is_weaker_grid;
          Alcotest.test_case "S_x membership" `Quick test_s_x_membership;
          Alcotest.test_case "P" `Quick test_perfect_p;
          Alcotest.test_case "◇P" `Quick test_eventually_p;
          Alcotest.test_case "dead module silent" `Quick test_crashed_reader_suspects_nobody;
          Alcotest.test_case "rejects incompleteness" `Quick test_checker_rejects_incompleteness;
          Alcotest.test_case "rejects bad accuracy" `Quick test_checker_rejects_bad_accuracy;
          Alcotest.test_case "scope threshold" `Quick test_accuracy_scope_threshold;
        ] );
      ( "leaders",
        [
          Alcotest.test_case "Ω_z membership" `Quick test_omega_z_membership;
          Alcotest.test_case "Ω_z upward grid" `Quick test_omega_weaker_with_larger_z;
          Alcotest.test_case "rejects disagreement" `Quick test_omega_checker_rejects_disagreement;
          Alcotest.test_case "rejects dead leader" `Quick test_omega_checker_rejects_dead_leader;
          Alcotest.test_case "rejects instability" `Quick test_omega_checker_rejects_late_instability;
        ] );
      ( "queries",
        [
          Alcotest.test_case "φ_y / ◇φ_y membership" `Quick test_phi_y_membership;
          Alcotest.test_case "triviality pointwise" `Quick test_phi_triviality_pointwise;
          Alcotest.test_case "perpetual safety" `Quick test_phi_perpetual_safety_pointwise;
          Alcotest.test_case "◇φ lies pre-gst" `Quick test_ephi_can_lie_pre_gst;
          Alcotest.test_case "liveness post-gst" `Quick test_phi_liveness_post_gst;
          Alcotest.test_case "Ψ containment" `Quick test_psi_containment_enforced;
          Alcotest.test_case "Ψ repeat ok" `Quick test_psi_repeat_query_ok;
          Alcotest.test_case "no-info modules" `Quick test_no_info_modules;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "oracle determinism" `Quick test_oracle_determinism;
          Alcotest.test_case "monitor change points" `Quick test_monitor_records_changes_only;
          Alcotest.test_case "monitor values_after" `Quick test_monitor_values_after;
          Alcotest.test_case "param validation" `Quick test_oracle_param_validation;
          Alcotest.test_case "one correct suffices" `Quick test_oracle_requires_correct_process;
          Alcotest.test_case "viz timeline" `Quick test_viz_timeline;
        ] );
    ]
