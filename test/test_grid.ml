(* Tests for the executable reducibility lattice (Core.Grid): the paper's
   explicit claims cell by cell, plus global soundness properties
   (reflexivity, composition-consistency, agreement-power monotonicity)
   checked exhaustively over all class pairs/triples at (n, t) = (8, 3). *)

open Setagree_core
open Grid

let check = Alcotest.(check bool)
let n = 8
let t = 3

let all_classes =
  List.concat
    [
      List.init n (fun i -> S (i + 1));
      List.init n (fun i -> ES (i + 1));
      List.init n (fun i -> Omega (i + 1));
      List.init (t + 1) (fun y -> Phi y);
      List.init (t + 1) (fun y -> EPhi y);
      List.init (t + 1) (fun y -> Psi y);
      [ Perfect; EPerfect ];
    ]

let is_yes = function Yes _ -> true | No _ | Unknown _ -> false
let is_no = function No _ -> true | Yes _ | Unknown _ -> false

let red from into = reducible ~n ~t ~from ~into

let assert_yes from into =
  if not (is_yes (red from into)) then
    Alcotest.failf "expected %s -> %s reducible"
      (Format.asprintf "%a" pp_cls from)
      (Format.asprintf "%a" pp_cls into)

let assert_no from into =
  if not (is_no (red from into)) then
    Alcotest.failf "expected %s -> %s irreducible"
      (Format.asprintf "%a" pp_cls from)
      (Format.asprintf "%a" pp_cls into)

(* --- the paper's explicit positive cells --- *)

let test_inclusions () =
  assert_yes (S 4) (S 2);
  assert_yes (S 4) (ES 4);
  assert_yes (ES 4) (ES 1);
  assert_yes (Phi 3) (Phi 1);
  assert_yes (Phi 2) (EPhi 2);
  assert_yes (Phi 2) (Psi 2);
  assert_yes (Omega 1) (Omega 3);
  assert_yes Perfect EPerfect

let test_wheels_reductions () =
  (* ◇S_x -> Omega_{t+2-x}; ◇φ_y -> Omega_{t+1-y}. *)
  assert_yes (ES 4) (Omega 1);
  assert_yes (ES 3) (Omega 2);
  assert_yes (ES 2) (Omega 3);
  assert_yes (EPhi 3) (Omega 1);
  assert_yes (EPhi 1) (Omega 3);
  assert_yes (Psi 2) (Omega 2);
  (* And the boundary fails. *)
  assert_no (ES 3) (Omega 1);
  assert_no (EPhi 2) (Omega 1);
  assert_no (Psi 1) (Omega 2)

let test_classic_equivalences () =
  (* Omega_1 ≃ ◇S. *)
  assert_yes (ES n) (Omega 1);
  assert_yes (Omega 1) (ES n);
  (* phi_t ≃ P, ◇phi_t ≃ ◇P. *)
  assert_yes (Phi t) Perfect;
  assert_yes Perfect (Phi t);
  assert_yes (EPhi t) EPerfect;
  assert_yes EPerfect (EPhi t);
  assert_yes (Phi t) (S n);
  assert_yes (EPhi t) (ES n)

let test_free_targets () =
  List.iter
    (fun into -> assert_yes (Omega (t + 1)) into)
    [ S 1; ES 1; Phi 0; EPhi 0; Psi 0; Omega (t + 1); Omega n ];
  check "free classes recognized" true
    (List.for_all (free ~n ~t) [ S 1; ES 1; Phi 0; EPhi 0; Psi 0; Omega (t + 1) ]);
  check "non-free recognized" true
    (not (List.exists (free ~n ~t) [ S 2; ES 2; Phi 1; Omega t; Perfect; EPerfect ]))

let test_perfection_sources () =
  assert_yes Perfect (S n);
  assert_yes Perfect (Phi 2);
  assert_yes Perfect (Omega 1);
  assert_yes EPerfect (ES n);
  assert_yes EPerfect (EPhi 2);
  assert_yes EPerfect (Omega 1);
  assert_no EPerfect (S 2);
  assert_no EPerfect (Phi 1);
  assert_no EPerfect Perfect

(* --- the paper's explicit negative cells --- *)

let test_thm10_suspectors_cannot_query () =
  assert_no (S 4) (EPhi 1);
  assert_no (S n) (Phi 1);
  assert_no (ES n) (EPhi 3);
  assert_no (ES 2) (Psi 1)

let test_thm11_phi_caps_scope () =
  assert_no (Phi 1) (ES 2);
  assert_no (Phi 2) (S 3);
  assert_no (EPhi 2) (ES 2);
  assert_no (EPhi 1) Perfect;
  (* but scope 1 is free and y = t escapes via P *)
  assert_yes (Phi 1) (ES 1);
  assert_yes (Phi t) (S 4)

let test_thm12_omega_blind () =
  assert_no (Omega 1) (Phi 1);
  assert_no (Omega 1) (EPhi 1);
  assert_no (Omega 2) (ES 2);
  assert_no (Omega 2) (Psi 1);
  assert_no (Omega 1) Perfect;
  assert_no (Omega 1) EPerfect

let test_omega_cannot_narrow () =
  assert_no (Omega 2) (Omega 1);
  assert_no (Omega 3) (Omega 2)

let test_eventual_cannot_give_perpetual () =
  assert_no (ES 4) (S 2);
  assert_no (EPhi 2) (Phi 1);
  assert_no (Omega 1) (S 2);
  assert_no EPerfect (Phi 3)

let test_invalid_params_rejected () =
  check "bad source" true
    (try
       ignore (reducible ~n ~t ~from:(S 0) ~into:(S 1));
       false
     with Invalid_argument _ -> true);
  check "bad target" true
    (try
       ignore (reducible ~n ~t ~from:(S 1) ~into:(Phi (t + 1)));
       false
     with Invalid_argument _ -> true)

(* --- parser / printer --- *)

let test_parse () =
  let cases =
    [
      ("S3", Some (S 3));
      ("es2", Some (ES 2));
      ("Omega1", Some (Omega 1));
      ("phi2", Some (Phi 2));
      ("EPhi0", Some (EPhi 0));
      ("psi1", Some (Psi 1));
      ("P", Some Perfect);
      ("ep", Some EPerfect);
      ("nonsense", None);
      ("S", None);
    ]
  in
  List.iter
    (fun (s, expected) ->
      check (Printf.sprintf "parse %S" s) true (parse_cls s = expected))
    cases

let test_parse_pp_roundtrip () =
  (* pp uses unicode glyphs, so round-trip through a manual encode. *)
  let encode = function
    | S x -> Printf.sprintf "S%d" x
    | ES x -> Printf.sprintf "ES%d" x
    | Omega z -> Printf.sprintf "Omega%d" z
    | Phi y -> Printf.sprintf "Phi%d" y
    | EPhi y -> Printf.sprintf "EPhi%d" y
    | Psi y -> Printf.sprintf "Psi%d" y
    | Perfect -> "P"
    | EPerfect -> "EP"
  in
  List.iter
    (fun c -> check "roundtrip" true (parse_cls (encode c) = Some c))
    all_classes

(* --- global soundness properties (exhaustive) --- *)

let test_reflexive () =
  List.iter (fun c -> assert_yes c c) all_classes

let classes_for ~n ~t =
  List.concat
    [
      List.init n (fun i -> S (i + 1));
      List.init n (fun i -> ES (i + 1));
      List.init n (fun i -> Omega (i + 1));
      List.init (t + 1) (fun y -> Phi y);
      List.init (t + 1) (fun y -> EPhi y);
      List.init (t + 1) (fun y -> Psi y);
      [ Perfect; EPerfect ];
    ]

let check_composition ~n ~t =
  let cs = classes_for ~n ~t in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if is_yes (reducible ~n ~t ~from:a ~into:b) then
            List.iter
              (fun c ->
                if
                  is_yes (reducible ~n ~t ~from:b ~into:c)
                  && is_no (reducible ~n ~t ~from:a ~into:c)
                then
                  Alcotest.failf
                    "composition broken at (n=%d,t=%d): %s -> %s -> %s but %s -> %s = No"
                    n t
                    (Format.asprintf "%a" pp_cls a)
                    (Format.asprintf "%a" pp_cls b)
                    (Format.asprintf "%a" pp_cls c)
                    (Format.asprintf "%a" pp_cls a)
                    (Format.asprintf "%a" pp_cls c))
              cs)
        cs)
    cs

let test_composition_consistency () =
  (* If a -> b and b -> c are both constructive, a -> c cannot be declared
     impossible: compositions are algorithms too.  Exhaustive over several
     system shapes. *)
  check_composition ~n:8 ~t:3;
  check_composition ~n:5 ~t:2;
  check_composition ~n:9 ~t:4;
  check_composition ~n:3 ~t:1

let test_power_monotone_along_reductions () =
  (* If a -> b then a can do whatever b does: k(a) <= k(b) whenever both
     powers are known. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if is_yes (red a b) then
            match (kset_power ~n ~t a, kset_power ~n ~t b) with
            | Some ka, Some kb ->
                if ka > kb then
                  Alcotest.failf "power inversion: %s -> %s but k=%d > k=%d"
                    (Format.asprintf "%a" pp_cls a)
                    (Format.asprintf "%a" pp_cls b)
                    ka kb
            | _ -> ())
        all_classes)
    all_classes

let test_kset_power_values () =
  Alcotest.(check (option int)) "Omega_2" (Some 2) (kset_power ~n ~t (Omega 2));
  Alcotest.(check (option int)) "◇S_3" (Some 2) (kset_power ~n ~t (ES 3));
  Alcotest.(check (option int)) "φ_1" (Some 3) (kset_power ~n ~t (Phi 1));
  Alcotest.(check (option int)) "P" (Some 1) (kset_power ~n ~t Perfect);
  Alcotest.(check (option int)) "free class" None (kset_power ~n ~t (ES 1));
  Alcotest.(check (option int)) "no majority" None (kset_power ~n:6 ~t:3 (Omega 1))

let test_grid_rows_pairwise () =
  (* Within one row of Figure 1: every non-Omega class reaches the row's
     Omega_z; Omega_z reaches none of them back. *)
  List.iter
    (fun (row : Bounds.row) ->
      if row.sx >= 2 && row.sx <= n then begin
        assert_yes (ES row.sx) (Omega row.z);
        (* The way back exists only on the consensus row (Omega_1 ≃ ◇S). *)
        if row.z >= 2 && row.z <= t then assert_no (Omega row.z) (ES row.sx)
        else if row.z = 1 then assert_yes (Omega row.z) (ES row.sx)
      end;
      if row.phiy >= 1 then begin
        assert_yes (EPhi row.phiy) (Omega row.z);
        assert_no (Omega row.z) (EPhi row.phiy)
      end)
    (Bounds.grid ~t)

let () =
  Alcotest.run "grid"
    [
      ( "paper-cells",
        [
          Alcotest.test_case "inclusions" `Quick test_inclusions;
          Alcotest.test_case "wheels reductions" `Quick test_wheels_reductions;
          Alcotest.test_case "classic equivalences" `Quick test_classic_equivalences;
          Alcotest.test_case "free targets" `Quick test_free_targets;
          Alcotest.test_case "perfection sources" `Quick test_perfection_sources;
          Alcotest.test_case "thm 10" `Quick test_thm10_suspectors_cannot_query;
          Alcotest.test_case "thm 11" `Quick test_thm11_phi_caps_scope;
          Alcotest.test_case "thm 12" `Quick test_thm12_omega_blind;
          Alcotest.test_case "omega cannot narrow" `Quick test_omega_cannot_narrow;
          Alcotest.test_case "eventual vs perpetual" `Quick test_eventual_cannot_give_perpetual;
          Alcotest.test_case "invalid params" `Quick test_invalid_params_rejected;
        ] );
      ( "interface",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "roundtrip" `Quick test_parse_pp_roundtrip;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "reflexive" `Quick test_reflexive;
          Alcotest.test_case "composition consistent" `Quick test_composition_consistency;
          Alcotest.test_case "power monotone" `Quick test_power_monotone_along_reductions;
          Alcotest.test_case "kset power values" `Quick test_kset_power_values;
          Alcotest.test_case "grid rows pairwise" `Quick test_grid_rows_pairwise;
        ] );
    ]
