(* Tests for the heartbeat/timeout implemented detectors (Fd.Impl) under
   partial synchrony, and for the classic reductions added in Core.Reduce
   (◇S ↔ Ω, φ_t ≃ P, weakenings) plus the rotating-coordinator ◇S
   consensus baseline. *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd
open Setagree_core

let check = Alcotest.(check bool)
let horizon = 300.0
let deadline = horizon -. 80.0

let setup ?(n = 7) ?(t = 3) ?(crashes = []) ~seed () =
  let sim = Sim.create ~horizon ~n ~t ~seed () in
  Sim.install_crashes sim crashes;
  sim

let assert_ok label v =
  if not (Check.verdict_ok v) then
    Alcotest.failf "%s: %s" label (String.concat "; " v.Check.notes)

(* --- Impl: heartbeat detectors --- *)

let test_impl_suspector_is_ep () =
  List.iter
    (fun (seed, crashes) ->
      let sim = setup ~seed ~crashes () in
      let hb = Impl.install sim () in
      let susp = Impl.suspector hb in
      let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> susp.Iface.suspected i) () in
      ignore (Sim.run sim);
      assert_ok
        (Printf.sprintf "seed %d" seed)
        (Check.es_x sim ~x:(Sim.n sim) ~deadline mon))
    [ (1, []); (2, [ (5, 10.0) ]); (3, [ (4, 5.0); (5, 35.0); (6, 60.0) ]) ]

let test_impl_omega_all_z () =
  List.iter
    (fun z ->
      let sim = setup ~seed:(10 + z) ~crashes:[ (0, 12.0); (6, 3.0) ] () in
      let hb = Impl.install sim () in
      let om = Impl.omega hb ~z in
      let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> om.Iface.trusted i) () in
      ignore (Sim.run sim);
      assert_ok (Printf.sprintf "z=%d" z) (Check.omega_z sim ~z ~deadline mon))
    [ 1; 2; 3 ]

let test_impl_querier_is_ephi () =
  List.iter
    (fun y ->
      let sim = setup ~seed:(20 + y) ~crashes:[ (5, 8.0); (6, 8.0) ] () in
      let hb = Impl.install sim () in
      let q, qlog = Impl.querier hb ~y in
      Sim.spawn sim ~pid:0 (fun () ->
          while true do
            ignore (q.Iface.query 0 (Pidset.of_list [ 5; 6 ]));
            ignore (q.Iface.query 0 (Pidset.of_list [ 0; 1 ]));
            ignore (q.Iface.query 0 (Pidset.of_list [ 1; 5; 6 ]));
            Sim.sleep 2.0
          done);
      ignore (Sim.run sim);
      assert_ok
        (Printf.sprintf "y=%d" y)
        (Check.phi_y sim ~y ~eventual:true ~deadline qlog))
    [ 1; 2; 3 ]

let test_impl_timeouts_adapt_and_stabilize () =
  let sim = setup ~seed:31 () in
  let hb = Impl.install sim ~initial_timeout:0.5 () in
  (* Absurdly aggressive initial timeout: pre-gst it must grow. *)
  ignore (Sim.run sim);
  let grew = ref false in
  for i = 0 to 6 do
    for j = 0 to 6 do
      if i <> j && Impl.timeout_of hb i j > 0.5 then grew := true
    done
  done;
  check "timeouts backed off" true !grew

let test_impl_no_ground_truth_peek () =
  (* A process that crashes after the network stabilizes is still detected
     (through silence, not the schedule). *)
  let sim = setup ~seed:32 ~crashes:[ (3, 80.0) ] () in
  let hb = Impl.install sim () in
  let susp = Impl.suspector hb in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> susp.Iface.suspected i) () in
  ignore (Sim.run sim);
  assert_ok "late crash detected" (Check.strong_completeness sim ~deadline mon)

let test_impl_full_stack_consensus () =
  (* Heartbeats -> implemented Omega -> Figure 3 -> consensus: not a single
     oracle in the loop. *)
  for seed = 41 to 44 do
    let sim = setup ~seed ~crashes:[ (5, 7.0); (6, 22.0) ] () in
    let hb = Impl.install sim () in
    let om = Impl.omega hb ~z:1 in
    let proposals = Array.init 7 (fun i -> 100 + i) in
    let h = Kset.install sim ~omega:om ~proposals () in
    ignore (Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim);
    assert_ok
      (Printf.sprintf "impl stack seed %d" seed)
      (Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h))
  done

let test_impl_wheels_on_implemented_classes () =
  (* The paper's own transformation fed with implemented (not oracle)
     inputs: implemented ◇P ⊆ ◇S_x + implemented ◇φ_y -> Omega_z. *)
  let n = 6 and t = 2 in
  let sim = Sim.create ~horizon:300.0 ~n ~t ~seed:51 () in
  Sim.install_crashes sim [ (5, 9.0) ];
  let hb = Impl.install sim () in
  let suspector = Impl.suspector hb in
  let querier, _ = Impl.querier hb ~y:1 in
  let w = Wheels.install sim ~suspector ~querier ~x:2 ~y:1 () in
  let om = Wheels.omega w in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> om.Iface.trusted i) () in
  ignore (Sim.run sim);
  assert_ok "wheels on implemented inputs" (Check.omega_z sim ~z:(Wheels.z w) ~deadline:220.0 mon)

let test_impl_determinism () =
  let observe () =
    let sim = setup ~seed:61 ~crashes:[ (2, 15.0) ] () in
    let hb = Impl.install sim () in
    let susp = Impl.suspector hb in
    let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> susp.Iface.suspected i) () in
    ignore (Sim.run sim);
    (Impl.heartbeats_sent hb, List.init 7 (fun i -> Monitor.final mon i))
  in
  check "replay identical" true (observe () = observe ())

(* --- Consensus_s: rotating-coordinator baseline --- *)

let run_cons_s ?(n = 7) ?(t = 3) ~crashes ~gst ~seed () =
  let sim = Sim.create ~horizon:3000.0 ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes; window = (0.0, 25.0) }) ~n ~t rng);
  let behavior = if gst <= 0.0 then Behavior.perfect else Behavior.stormy ~gst in
  let suspector, _ = Oracle.es_x sim ~x:n ~behavior () in
  let proposals = Array.init n (fun i -> 100 + i) in
  let h = Consensus_s.install sim ~suspector ~proposals () in
  ignore (Sim.run ~stop_when:(fun () -> Consensus_s.all_correct_decided h) sim);
  (sim, h, proposals)

let test_cons_s_agreement_sweep () =
  List.iter
    (fun (crashes, gst, seed) ->
      let sim, h, proposals = run_cons_s ~crashes ~gst ~seed () in
      assert_ok
        (Printf.sprintf "crashes=%d seed=%d" crashes seed)
        (Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Consensus_s.decisions h)))
    [ (0, 40.0, 1); (2, 40.0, 2); (3, 40.0, 3); (0, 0.0, 4); (3, 0.0, 5) ]

let test_cons_s_requires_majority () =
  let sim = Sim.create ~n:6 ~t:3 ~seed:1 () in
  let suspector, _ = Oracle.es_x sim ~x:6 () in
  check "t >= n/2 rejected" true
    (try
       ignore (Consensus_s.install sim ~suspector ~proposals:(Array.make 6 0) ());
       false
     with Invalid_argument _ -> true)

let test_cons_s_vs_omega_route () =
  (* Both routes decide one value; the coordinator rotation typically costs
     extra rounds relative to the Omega route when early coordinators are
     crashed. *)
  let sim, h, proposals = run_cons_s ~crashes:3 ~gst:40.0 ~seed:7 () in
  assert_ok "baseline correct"
    (Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Consensus_s.decisions h));
  check "positive rounds" true (Consensus_s.max_round h >= 1)

(* --- classic reductions --- *)

let test_lower_wheel_full_scope_gives_omega () =
  let n = 6 and t = 2 in
  let sim = Sim.create ~horizon ~n ~t ~seed:71 () in
  Sim.install_crashes sim [ (0, 5.0) ];
  let suspector, _ = Oracle.es_x sim ~x:n ~behavior:(Behavior.stormy ~gst:30.0) () in
  let _, om = Reduce.omega_from_full_scope_es sim ~suspector () in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> om.Iface.trusted i) () in
  ignore (Sim.run sim);
  assert_ok "◇S -> Omega via lower wheel" (Check.omega_z sim ~z:1 ~deadline mon)

let test_es_from_omega () =
  let n = 6 and t = 2 in
  let sim = Sim.create ~horizon ~n ~t ~seed:72 () in
  Sim.install_crashes sim [ (1, 5.0); (4, 18.0) ];
  let om, _ = Oracle.omega_z sim ~z:1 ~behavior:(Behavior.stormy ~gst:30.0) () in
  let s = Reduce.es_from_omega om ~n in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> s.Iface.suspected i) () in
  Sim.ticker sim ~every:0.5;
  ignore (Sim.run sim);
  assert_ok "Omega -> ◇S" (Check.es_x sim ~x:n ~deadline mon)

let test_phi_t_p_equivalence_roundtrip () =
  let n = 6 and t = 2 in
  (* P -> phi_t -> P: still perfect. *)
  let sim = Sim.create ~horizon ~n ~t ~seed:73 () in
  Sim.install_crashes sim [ (2, 7.0) ];
  let p = Oracle.perfect_p sim in
  let q = Reduce.phi_t_from_p p ~t in
  let p' = Reduce.p_from_phi_t q ~n in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> p'.Iface.suspected i) () in
  Sim.ticker sim ~every:0.5;
  ignore (Sim.run sim);
  assert_ok "roundtrip completeness" (Check.strong_completeness sim ~deadline mon);
  assert_ok "roundtrip perpetual accuracy"
    (Check.s_x sim ~x:n ~deadline mon)

let test_phi_t_from_p_is_legal_phi () =
  let n = 6 and t = 2 in
  let sim = Sim.create ~horizon ~n ~t ~seed:74 () in
  Sim.install_crashes sim [ (4, 6.0); (5, 9.0) ];
  let p = Oracle.perfect_p sim in
  let q = Reduce.phi_t_from_p p ~t in
  (* Log queries manually to reuse the phi checker. *)
  let log : Oracle.query_log = ref [] in
  let logged i x =
    let r = q.Iface.query i x in
    log := { Oracle.q_time = Sim.now sim; q_pid = i; q_set = x; q_result = r } :: !log;
    r
  in
  Sim.spawn sim ~pid:0 (fun () ->
      while true do
        ignore (logged 0 (Pidset.of_list [ 4; 5 ]));
        ignore (logged 0 (Pidset.singleton 1));
        ignore (logged 0 (Pidset.of_list [ 0; 1; 2; 3 ]));
        Sim.sleep 2.0
      done);
  ignore (Sim.run sim);
  assert_ok "phi_t membership" (Check.phi_y sim ~y:t ~eventual:false ~deadline log)

let test_weaken_phi_triviality_band () =
  let t = 3 in
  (* The y module would answer the (t-y', t-y] sizes itself; the weakening
     must answer them trivially true. *)
  let never = { Iface.query = (fun _ _ -> false) } in
  let weak = Reduce.weaken_phi never ~t ~y':1 in
  check "size t-y' answers true" true (weak.Iface.query 0 (Pidset.of_list [ 0; 1 ]));
  check "meaningful delegates" false (weak.Iface.query 0 (Pidset.of_list [ 0; 1; 2 ]))

let test_weaken_identities () =
  let om = { Iface.trusted = (fun _ -> Pidset.singleton 3) } in
  check "omega weaken id" true
    (Pidset.equal ((Reduce.weaken_omega om).Iface.trusted 0) (Pidset.singleton 3));
  let s = { Iface.suspected = (fun _ -> Pidset.singleton 2) } in
  check "suspector weaken id" true
    (Pidset.equal ((Reduce.weaken_suspector s).Iface.suspected 0) (Pidset.singleton 2))

let test_psync_delay_bounds () =
  let rng = Rng.create 1 in
  let d = Delay.Psync { gst = 10.0; bound = 2.0; pre_spread = 50.0 } in
  for _ = 1 to 200 do
    let post = Delay.sample d ~rng ~src:0 ~dst:1 ~now:15.0 in
    check "bounded after gst" true (post >= 0.0 && post <= 2.0)
  done;
  for _ = 1 to 200 do
    let pre = Delay.sample d ~rng ~src:0 ~dst:1 ~now:5.0 in
    (* Pre-gst messages may be parked, but never beyond gst + bound. *)
    check "pre-gst capped at gst+bound" true (5.0 +. pre <= 12.0 +. 1e-9)
  done

let () =
  Alcotest.run "impl"
    [
      ( "heartbeat-detectors",
        [
          Alcotest.test_case "suspector is ◇P" `Quick test_impl_suspector_is_ep;
          Alcotest.test_case "omega all z" `Quick test_impl_omega_all_z;
          Alcotest.test_case "querier is ◇φ_y" `Quick test_impl_querier_is_ephi;
          Alcotest.test_case "timeouts adapt" `Quick test_impl_timeouts_adapt_and_stabilize;
          Alcotest.test_case "late crash detected" `Quick test_impl_no_ground_truth_peek;
          Alcotest.test_case "full stack consensus" `Quick test_impl_full_stack_consensus;
          Alcotest.test_case "wheels on implemented" `Quick test_impl_wheels_on_implemented_classes;
          Alcotest.test_case "determinism" `Quick test_impl_determinism;
          Alcotest.test_case "psync bounds" `Quick test_psync_delay_bounds;
        ] );
      ( "consensus-baseline",
        [
          Alcotest.test_case "agreement sweep" `Quick test_cons_s_agreement_sweep;
          Alcotest.test_case "majority required" `Quick test_cons_s_requires_majority;
          Alcotest.test_case "vs omega route" `Quick test_cons_s_vs_omega_route;
        ] );
      ( "classic-reductions",
        [
          Alcotest.test_case "◇S -> Omega (lower wheel)" `Quick
            test_lower_wheel_full_scope_gives_omega;
          Alcotest.test_case "Omega -> ◇S" `Quick test_es_from_omega;
          Alcotest.test_case "P <-> φ_t roundtrip" `Quick test_phi_t_p_equivalence_roundtrip;
          Alcotest.test_case "P -> φ_t membership" `Quick test_phi_t_from_p_is_legal_phi;
          Alcotest.test_case "weaken_phi band" `Quick test_weaken_phi_triviality_band;
          Alcotest.test_case "weaken identities" `Quick test_weaken_identities;
        ] );
    ]
