(* Tests for the executable impossibility scenarios (paper §5): every
   scenario must confirm its theorem's prediction, and the violation search
   must separate k < z from k >= z cleanly. *)

open Setagree_core

let check = Alcotest.(check bool)

let assert_confirmed (r : Indist.report) =
  if not r.ok then
    Alcotest.failf "%s NOT confirmed: %s" r.title (String.concat "; " r.details)

let test_o1_phi_blind () =
  List.iter
    (fun (y, crashes, seed) ->
      assert_confirmed (Indist.phi_blind_to_victims ~n:8 ~t:3 ~y ~crashes ~seed))
    [ (1, 2, 1); (1, 1, 2); (2, 1, 3); (0, 3, 4) ]

let test_o1_misuse_flagged () =
  let r = Indist.phi_blind_to_victims ~n:8 ~t:3 ~y:3 ~crashes:2 ~seed:1 in
  check "crashes > t - y rejected" false r.ok

let test_omega_blind () =
  List.iter
    (fun (z, seed) -> assert_confirmed (Indist.omega_blind_to_crashes ~n:7 ~t:3 ~z ~seed))
    [ (1, 1); (2, 2); (3, 3) ]

let test_thm10_pairs () =
  List.iter
    (fun (x, y, seed) -> assert_confirmed (Indist.thm10_pair ~n:7 ~t:3 ~x ~y ~seed ()))
    [ (4, 1, 1); (3, 2, 2); (7, 1, 3) ]

let test_thm12_pairs () =
  List.iter
    (fun (z, y, seed) -> assert_confirmed (Indist.thm12_pair ~n:8 ~t:3 ~z ~y ~seed))
    [ (1, 1, 1); (2, 1, 2); (1, 2, 3); (2, 3, 4) ]

let test_thm12_bad_params () =
  let r = Indist.thm12_pair ~n:4 ~t:3 ~z:3 ~y:1 ~seed:1 in
  check "E and L overlap rejected" false r.ok

let test_thm10_bad_params () =
  (* y = 0 means |E| = t + 1 > t: the construction does not apply. *)
  let r = Indist.thm10_pair ~n:7 ~t:3 ~x:4 ~y:0 ~seed:1 () in
  check "rejected" false r.ok

let test_violation_when_k_below_z () =
  List.iter
    (fun (z, k) ->
      assert_confirmed
        (Indist.kset_violation_search ~n:7 ~t:2 ~z ~k ~seeds:(List.init 25 (fun i -> i + 1))))
    [ (2, 1); (3, 2); (3, 1) ]

let test_no_violation_when_k_geq_z () =
  List.iter
    (fun (z, k) ->
      assert_confirmed
        (Indist.kset_violation_search ~n:7 ~t:2 ~z ~k ~seeds:(List.init 25 (fun i -> i + 1))))
    [ (1, 1); (2, 2); (2, 3); (3, 3) ]

let test_distinct_decisions_helper () =
  Alcotest.(check int) "distinct" 2
    (Indist.distinct_decisions [ (0, 5, 1, 0.0); (1, 5, 1, 0.0); (2, 7, 2, 1.0) ]);
  Alcotest.(check int) "empty" 0 (Indist.distinct_decisions [])

let test_reports_printable () =
  let r = Indist.phi_blind_to_victims ~n:8 ~t:3 ~y:1 ~crashes:2 ~seed:9 in
  let s = Format.asprintf "%a" Indist.pp_report r in
  check "non-empty rendering" true (String.length s > 20)

let () =
  Alcotest.run "indist"
    [
      ( "information-caps",
        [
          Alcotest.test_case "O1: phi blind to victims" `Quick test_o1_phi_blind;
          Alcotest.test_case "O1 misuse flagged" `Quick test_o1_misuse_flagged;
          Alcotest.test_case "omega blind to crashes" `Quick test_omega_blind;
        ] );
      ( "theorem-10",
        [
          Alcotest.test_case "pair runs" `Quick test_thm10_pairs;
          Alcotest.test_case "bad params" `Quick test_thm10_bad_params;
        ] );
      ( "theorem-12",
        [
          Alcotest.test_case "pair runs" `Quick test_thm12_pairs;
          Alcotest.test_case "bad params" `Quick test_thm12_bad_params;
        ] );
      ( "theorem-5-tightness",
        [
          Alcotest.test_case "k < z violates" `Quick test_violation_when_k_below_z;
          Alcotest.test_case "k >= z never violates" `Quick test_no_violation_when_k_geq_z;
          Alcotest.test_case "distinct helper" `Quick test_distinct_decisions_helper;
          Alcotest.test_case "printable" `Quick test_reports_printable;
        ] );
    ]
