(* Tests for the unified Job API (DESIGN.md §11): spec serialization and
   canonical stability, the content-addressed result cache (warm replays
   byte-identical to cold, -j1 = -jN, per-protocol invalidation), and
   the serve daemon end-to-end over its Unix socket. *)

open Setagree_util
open Setagree_core
open Setagree_runner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* A fresh scratch directory per test (deleted and recreated). *)
let tmpdir name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fdkit_job_%s_%d" name (Unix.getpid ()))
  in
  rm_rf d;
  mkdir_p d;
  d

(* ------------------------------------------------------------------ *)
(* Spec generators                                                     *)
(* ------------------------------------------------------------------ *)

(* Floats are multiples of 1/4 so the JSON text round-trips exactly. *)
let qf lo hi =
  QCheck.Gen.map
    (fun i -> float_of_int i /. 4.0)
    (QCheck.Gen.int_range (lo * 4) (hi * 4))

let gen_params =
  QCheck.Gen.(
    map
      (fun ((n, t, seed), (z, k, x, y), (gst, horizon), (adversarial, variant, backend)) ->
        {
          Protocol.default with
          Protocol.n;
          t;
          seed;
          z;
          k;
          x;
          y;
          gst;
          horizon;
          adversarial;
          variant;
          backend;
        })
      (quad
         (triple (int_range 4 12) (int_range 1 4) (int_range 1 99))
         (quad (int_range 1 3) (int_range 1 3) (int_range 1 3) (int_range 1 3))
         (pair (qf 0 50) (qf 100 400))
         (triple bool
            (oneofl [ "es"; "phi"; "psi" ])
            (oneofl [ "sim"; "rt"; "rt-chan" ]))))

let gen_bounds =
  QCheck.Gen.(
    map
      (fun ((depth, delays, walks), (max_runs, walk_batch, shrink)) ->
        {
          Explorer.default_bounds with
          Explorer.depth;
          delays;
          walks;
          max_runs_per_job = max_runs;
          walk_batch;
          shrink_budget = shrink;
        })
      (pair
         (triple (int_range 1 10) (int_range 0 4) (int_range 0 8))
         (triple (int_range 1 500) (int_range 1 8) (int_range 0 100))))

let protos = [ "kset"; "wheels"; "psi"; "consensus_s" ]

let gen_spec =
  QCheck.Gen.(
    let* p = gen_params in
    oneof
      [
        map (fun protocol -> Job.Run { protocol; params = p }) (oneofl protos);
        map2
          (fun protocol seeds -> Job.Campaign { protocol; seeds; params = p })
          (oneofl protos) (int_range 1 64);
        map2
          (fun protocols (mixes, seeds) ->
            Job.Chaos { protocols; mixes; seeds; base = p })
          (list_size (int_range 1 3) (oneofl protos))
          (pair (list_size (int_range 1 3) (oneofl Chaos.mix_names)) (int_range 1 8));
        map2
          (fun protocol bounds -> Job.Explore { protocol; params = p; bounds })
          (oneofl protos) gen_bounds;
        map
          (fun (source, path, index) -> Job.Replay { source; path; index })
          (triple
             (oneofl [ Job.Schedule_file; Job.Faults_file ])
             (oneofl [ "counterexamples.json"; "_results/chaos_failures.json" ])
             (int_bound 5));
      ])

let arb_spec = QCheck.make ~print:Job.summary gen_spec

let qcheck_spec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Job: of_json (to_json s) = s" arb_spec
    (fun spec ->
      match Job.of_json (Job.to_json spec) with
      | Ok spec' -> Job.equal spec spec'
      | Error e -> QCheck.Test.fail_reportf "of_json failed: %s" e)

let qcheck_canonical_text_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Job: round-trip through canonical text"
    arb_spec (fun spec ->
      match Job.of_json (Json.of_string_exn (Job.canonical spec)) with
      | Ok spec' ->
          Job.equal spec spec'
          && Job.canonical spec = Job.canonical spec'
      | Error e -> QCheck.Test.fail_reportf "of_json failed: %s" e)

(* The canonical encoding is the basis of cache keys: pin it so an
   accidental field reorder (which would silently invalidate every
   cache on disk) fails a test instead. *)
let test_canonical_pinned () =
  let spec = Job.of_flags ~kind:`Campaign ~seeds:4 ~protocol:"kset" Protocol.default in
  Alcotest.(check string) "canonical bytes are stable"
    "{\"kind\":\"campaign\",\"protocol\":\"kset\",\"seeds\":4,\"params\":{\"n\":8,\"t\":3,\"seed\":1,\"z\":1,\"k\":1,\"x\":2,\"y\":1,\"gst\":40.0,\"horizon\":0.0,\"crashes\":{\"kind\":\"exactly\",\"crashes\":2,\"window\":[0.0,20.0]},\"faults\":{\"links\":[],\"partitions\":[],\"stalls\":[],\"crashes\":{\"kind\":\"none\"},\"adversary\":\"\"},\"legacy_poll\":false,\"legacy_queue\":false,\"adversarial\":false,\"variant\":\"es\",\"trace\":\"default\",\"backend\":\"sim\"}}"
    (Job.canonical spec)

let test_of_flags_defaults () =
  (match Job.of_flags ~kind:`Chaos ~protocol:"" ~seeds:8 Protocol.default with
  | Job.Chaos { protocols; mixes; seeds; _ } ->
      check "default protocols" true (protocols = Chaos.default_protocols);
      check "default mixes" true (mixes = Chaos.mix_names);
      check_int "seeds" 8 seeds
  | _ -> Alcotest.fail "expected Chaos");
  match Job.of_flags ~kind:`Explore ~protocol:"kset" Protocol.default with
  | Job.Explore { params; _ } ->
      check "adversarial on by default" true params.Protocol.adversarial;
      check "horizon defaulted" true (params.Protocol.horizon = 300.0)
  | _ -> Alcotest.fail "expected Explore"

let test_validate () =
  check "good spec" true
    (Job.validate (Job.of_flags ~kind:`Run ~protocol:"kset" Protocol.default)
    = Ok ());
  check "unknown protocol rejected" true
    (Result.is_error
       (Job.validate (Job.of_flags ~kind:`Run ~protocol:"nope" Protocol.default)));
  check "zero seeds rejected" true
    (Result.is_error
       (Job.validate
          (Job.of_flags ~kind:`Campaign ~seeds:0 ~protocol:"kset" Protocol.default)));
  check "missing replay file rejected" true
    (Result.is_error
       (Job.validate
          (Job.Replay
             { source = Job.Faults_file; path = "/no/such/file.json"; index = 0 })))

(* ------------------------------------------------------------------ *)
(* The result cache                                                    *)
(* ------------------------------------------------------------------ *)

let seeds = 6

let small_spec =
  Job.of_flags ~kind:`Campaign ~seeds ~protocol:"kset" Protocol.default

let execute ?fingerprint ~jobs dir =
  Job.execute ~jobs ?fingerprint ~cache:(Runner.Cache.create ~dir ()) small_spec

let test_cache_cold_warm_identical () =
  let dir = tmpdir "coldwarm" in
  let cold = (execute ~jobs:2 dir).Job.o_campaign in
  let warm = (execute ~jobs:2 dir).Job.o_campaign in
  check_int "cold executed all" seeds cold.Runner.c_executed;
  check_int "cold hit nothing" 0 cold.Runner.c_cache_hits;
  check_int "warm executed nothing" 0 warm.Runner.c_executed;
  check_int "warm hit everything" seeds warm.Runner.c_cache_hits;
  Alcotest.(check string) "warm summary byte-identical to cold"
    (Runner.signature cold) (Runner.signature warm);
  rm_rf dir

let test_cache_j1_equals_jn () =
  let dir = tmpdir "j1jn" in
  let cold = (execute ~jobs:1 dir).Job.o_campaign in
  let j1 = (execute ~jobs:1 dir).Job.o_campaign in
  let jn = (execute ~jobs:4 dir).Job.o_campaign in
  check_int "j1 warm" 0 j1.Runner.c_executed;
  check_int "jn warm" 0 jn.Runner.c_executed;
  Alcotest.(check string) "-j1 = -jN on a warm cache" (Runner.signature j1)
    (Runner.signature jn);
  Alcotest.(check string) "warm = cold" (Runner.signature cold)
    (Runner.signature j1);
  rm_rf dir

let test_cache_fingerprint_invalidation () =
  let dir = tmpdir "fp" in
  ignore (execute ~jobs:2 dir);
  (* A changed code fingerprint must miss every entry it keys. *)
  let bumped name = Fingerprint.protocol name ^ "+patch" in
  let o = (execute ~fingerprint:bumped ~jobs:2 dir).Job.o_campaign in
  check_int "bumped fingerprint misses all" seeds o.Runner.c_executed;
  check_int "no stale hits" 0 o.Runner.c_cache_hits;
  (* ... and the re-executed results must agree with the originals. *)
  let warm = (execute ~jobs:2 dir).Job.o_campaign in
  Alcotest.(check string) "same results under both fingerprints"
    (Runner.signature o) (Runner.signature warm);
  rm_rf dir

let test_cache_key_sensitivity () =
  let key parts = Runner.Cache.key ~parts in
  let base = [ "1"; "fp"; "run"; "kset"; "{\"n\":8,\"seed\":1}" ] in
  check "params change the key" true
    (key base <> key [ "1"; "fp"; "run"; "kset"; "{\"n\":8,\"seed\":2}" ]);
  check "fingerprint changes the key" true
    (key base <> key [ "1"; "fp2"; "run"; "kset"; "{\"n\":8,\"seed\":1}" ]);
  check "kind changes the key" true
    (key base <> key [ "1"; "fp"; "chaos"; "kset"; "{\"n\":8,\"seed\":1}" ]);
  check "schema version changes the key" true
    (key base <> key [ "2"; "fp"; "run"; "kset"; "{\"n\":8,\"seed\":1}" ]);
  (* Concatenation ambiguity must not collide (NUL-joined parts). *)
  check "part boundaries matter" true
    (key [ "ab"; "c" ] <> key [ "a"; "bc" ])

let test_rt_jobs_never_cached () =
  let dir = tmpdir "rt" in
  let spec =
    Job.of_flags ~kind:`Campaign ~seeds:2 ~protocol:"kset"
      { Protocol.default with Protocol.backend = "rt-chan" }
  in
  (* No rt runner is installed in the test binary: jobs fail with a
     note, but the cache question is orthogonal — nothing may be
     stored or resolved for an rt backend. *)
  let cache = Runner.Cache.create ~dir () in
  let o = Job.execute ~jobs:1 ~cache spec in
  check_int "nothing cached" 0 (Runner.Cache.stores cache);
  check_int "nothing hit" 0 o.Job.o_campaign.Runner.c_cache_hits;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* The serve daemon, end to end                                        *)
(* ------------------------------------------------------------------ *)

let daemon_config dir ~cache =
  {
    Serve.default_config with
    Serve.socket_path = Filename.concat dir "fdkit.sock";
    cache_dir = (if cache then Some (Filename.concat dir "cache") else None);
    jobs = Some 2;
    out_dir = dir;
    log = ignore;
  }

let start_daemon config =
  let d = Domain.spawn (fun () -> Serve.serve ~config ()) in
  let rec wait n =
    if n = 0 then Alcotest.fail "daemon socket never appeared"
    else if not (Sys.file_exists config.Serve.socket_path) then begin
      Unix.sleepf 0.05;
      wait (n - 1)
    end
  in
  wait 100;
  d

let connect config =
  match Serve.Client.connect config.Serve.socket_path with
  | Ok conn -> conn
  | Error e -> Alcotest.fail e

let expect = function Ok v -> v | Error e -> Alcotest.fail e

let frame_type v =
  match Json.member "type" v with Some (Json.String s) -> s | _ -> "?"

let test_daemon_submit_stream_status_shutdown () =
  let dir = tmpdir "daemon" in
  let config = daemon_config dir ~cache:true in
  let d = start_daemon config in
  let conn = connect config in
  (* ping *)
  check "pong" true (frame_type (expect (Serve.Client.ping conn)) = "pong");
  (* cold submit: ack, one progress frame per job, done *)
  let progress = ref 0 and cached = ref 0 in
  let on_event v =
    if frame_type v = "progress" then begin
      incr progress;
      if Json.member "cached" v = Some (Json.Bool true) then incr cached
    end
  in
  let v = expect (Serve.Client.submit ~on_event conn small_spec) in
  check "terminal frame is done" true (frame_type v = "done");
  check "exit 0" true (Json.member "exit" v = Some (Json.Int 0));
  check_int "one progress frame per job" seeds !progress;
  check_int "cold run hit nothing" 0 !cached;
  check "cold executed" true (Json.member "executed" v = Some (Json.Int seeds));
  let sig_cold = Json.member "signature" v in
  (* warm resubmit: same signature, zero executed, all frames cached *)
  progress := 0;
  cached := 0;
  let v = expect (Serve.Client.submit ~on_event conn small_spec) in
  check "warm executed nothing" true
    (Json.member "executed" v = Some (Json.Int 0));
  check "warm hit everything" true
    (Json.member "cache_hits" v = Some (Json.Int seeds));
  check_int "warm frames all cached" seeds !cached;
  check "warm signature = cold signature" true
    (Json.member "signature" v = sig_cold);
  (* the daemon wrote the usual campaign artifact into out_dir *)
  check "artifact written" true
    (Sys.file_exists (Filename.concat dir "BENCH_kset.json"));
  (* a rejected spec acks accepted=false and does not kill the session *)
  let bad = Job.of_flags ~kind:`Run ~protocol:"nope" Protocol.default in
  let v = expect (Serve.Client.submit conn bad) in
  check "rejected ack" true
    (frame_type v = "ack"
    && Json.member "accepted" v = Some (Json.Bool false));
  (* status: 3 records (2 done, 1 rejected) + live cache counters *)
  let v = expect (Serve.Client.status conn) in
  (match Json.member "jobs" v with
  | Some (Json.List records) -> check_int "history length" 3 (List.length records)
  | _ -> Alcotest.fail "status has no jobs list");
  (match Json.member "cache" v with
  | Some (Json.Obj _ as cache) ->
      check "cache hits counted" true
        (match Json.member "hits" cache with
        | Some (Json.Int h) -> h >= seeds
        | _ -> false)
  | _ -> Alcotest.fail "status has no cache counters");
  check "bye" true (frame_type (expect (Serve.Client.shutdown conn)) = "bye");
  Serve.Client.close conn;
  Domain.join d;
  check "socket removed on shutdown" false
    (Sys.file_exists config.Serve.socket_path);
  rm_rf dir

(* Cancellation is consumed between job submissions, so the exact stop
   point is timing-dependent; the invariants are not: a done frame
   always arrives, its state is done or cancelled, and a cancelled
   campaign keeps (and counts) only completed jobs. *)
let test_daemon_cancel () =
  let dir = tmpdir "cancel" in
  let config = daemon_config dir ~cache:false in
  let d = start_daemon config in
  let conn = connect config in
  let total = 40 in
  let spec = Job.of_flags ~kind:`Campaign ~seeds:total ~protocol:"kset" Protocol.default in
  let ack =
    expect
      (Serve.Client.request conn
         (Json.Obj [ ("op", Json.String "submit"); ("spec", Job.to_json spec) ]))
  in
  check "accepted" true (Json.member "accepted" ack = Some (Json.Bool true));
  Serve.Client.cancel conn;
  let rec drain () =
    let v = expect (Serve.Client.next_frame conn) in
    if frame_type v = "done" then v else drain ()
  in
  let v = drain () in
  let state =
    match Json.member "state" v with Some (Json.String s) -> s | _ -> "?"
  in
  check "terminal state" true (state = "cancelled" || state = "done");
  (match (Json.member "jobs" v, Json.member "executed" v) with
  | Some (Json.Int jobs), Some (Json.Int executed) ->
      check "kept = executed (no cache)" true (jobs = executed);
      if state = "cancelled" then
        check "cancelled kept a strict prefix" true (jobs < total)
      else check_int "finished everything" total jobs
  | _ -> Alcotest.fail "done frame missing jobs/executed");
  ignore (expect (Serve.Client.shutdown conn));
  Serve.Client.close conn;
  Domain.join d;
  rm_rf dir

(* Client hang-up while a campaign runs must cancel the remainder (the
   daemon survives and serves the next connection). *)
let test_daemon_eof_cancels () =
  let dir = tmpdir "eof" in
  let config = daemon_config dir ~cache:false in
  let d = start_daemon config in
  let conn = connect config in
  let spec = Job.of_flags ~kind:`Campaign ~seeds:40 ~protocol:"kset" Protocol.default in
  let ack =
    expect
      (Serve.Client.request conn
         (Json.Obj [ ("op", Json.String "submit"); ("spec", Job.to_json spec) ]))
  in
  check "accepted" true (Json.member "accepted" ack = Some (Json.Bool true));
  Serve.Client.close conn;
  (* The daemon must notice the hang-up, finish the record, and accept a
     fresh connection. *)
  let conn = connect config in
  let v = expect (Serve.Client.status conn) in
  (match Json.member "jobs" v with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "no record of the abandoned job");
  ignore (expect (Serve.Client.shutdown conn));
  Serve.Client.close conn;
  Domain.join d;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Live telemetry plane                                                *)
(* ------------------------------------------------------------------ *)

(* Telemetry is strictly read-side: a subscribed run must deliver at
   least one snapshot frame (the final flush after the joins is
   unconditional), stop delivering after unsubscribe, and leave the
   campaign signature untouched either way. *)
let test_daemon_telemetry_subscription () =
  let dir = tmpdir "telemetry" in
  let config = daemon_config dir ~cache:false in
  let d = start_daemon config in
  let conn = connect config in
  Serve.Client.subscribe conn;
  let telemetry = ref 0 and acked = ref false and complete = ref false in
  let on_event v =
    match frame_type v with
    | "subscribed" -> acked := true
    | "telemetry" ->
        incr telemetry;
        (match (Json.member "done" v, Json.member "total" v) with
        | Some (Json.Int dn), Some (Json.Int tot) ->
            check "done <= total" true (dn <= tot);
            if dn = tot then complete := true
        | _ -> Alcotest.fail "telemetry frame missing done/total");
        check "telemetry names the job" true (Json.member "id" v <> None);
        check "telemetry carries counters" true
          (match Json.member "counters" v with
          | Some (Json.Obj _) -> true
          | _ -> false)
    | _ -> ()
  in
  let v = expect (Serve.Client.submit ~on_event conn small_spec) in
  check "done" true (frame_type v = "done");
  check "subscription acked" true !acked;
  check "at least one snapshot" true (!telemetry >= 1);
  check "final snapshot is complete" true !complete;
  let sig_subscribed = Json.member "signature" v in
  (* unsubscribe: frames stop, the execution must not change *)
  Serve.Client.unsubscribe conn;
  telemetry := 0;
  let unsub_acked = ref false in
  let on_event v =
    match frame_type v with
    | "unsubscribed" -> unsub_acked := true
    | "telemetry" -> incr telemetry
    | _ -> ()
  in
  let v = expect (Serve.Client.submit ~on_event conn small_spec) in
  check "done again" true (frame_type v = "done");
  check "unsubscription acked" true !unsub_acked;
  check_int "no frames once unsubscribed" 0 !telemetry;
  check "telemetry left the signature alone" true
    (Json.member "signature" v = sig_subscribed);
  (* the freshness stamp is kept even for the unsubscribed run *)
  let v = expect (Serve.Client.status conn) in
  check "status has queue depth" true
    (Json.member "queue_depth" v = Some (Json.Int 0));
  (match Json.member "jobs" v with
  | Some (Json.List records) ->
      check "finished records carry phase + telemetry age" true
        (List.for_all
           (fun r ->
             Json.member "phase" r = Some (Json.String "finished")
             &&
             match Json.member "telemetry_age_s" r with
             | Some (Json.Float _) -> true
             | _ -> false)
           records)
  | _ -> Alcotest.fail "status has no jobs list");
  ignore (expect (Serve.Client.shutdown conn));
  Serve.Client.close conn;
  Domain.join d;
  rm_rf dir

(* Toggling the subscription while a campaign runs exercises the
   stop-hook poller: every toggle is eventually acked (mid-run by the
   poller, after the run by the main frame loop), the job finishes
   clean, and the daemon keeps serving. *)
let test_daemon_subscription_races () =
  let dir = tmpdir "races" in
  let config = daemon_config dir ~cache:false in
  let d = start_daemon config in
  let conn = connect config in
  let toggles = 8 in
  let spec =
    Job.of_flags ~kind:`Campaign ~seeds:40 ~protocol:"kset" Protocol.default
  in
  let ack =
    expect
      (Serve.Client.request conn
         (Json.Obj [ ("op", Json.String "submit"); ("spec", Job.to_json spec) ]))
  in
  check "accepted" true (Json.member "accepted" ack = Some (Json.Bool true));
  for _ = 1 to toggles do
    Serve.Client.subscribe conn;
    Serve.Client.unsubscribe conn
  done;
  let acks = ref 0 in
  let count v =
    match frame_type v with
    | "subscribed" | "unsubscribed" -> incr acks
    | _ -> ()
  in
  let rec drain () =
    let v = expect (Serve.Client.next_frame conn) in
    count v;
    if frame_type v = "done" then v else drain ()
  in
  let v = drain () in
  check "finished clean" true (Json.member "exit" v = Some (Json.Int 0));
  (* toggles the poller missed are answered by the post-run frame loop *)
  while !acks < 2 * toggles do
    count (expect (Serve.Client.next_frame conn))
  done;
  check_int "every toggle acked" (2 * toggles) !acks;
  check "daemon still answers" true
    (frame_type (expect (Serve.Client.ping conn)) = "pong");
  ignore (expect (Serve.Client.shutdown conn));
  Serve.Client.close conn;
  Domain.join d;
  rm_rf dir

(* A subscriber that vanishes mid-telemetry-stream must not take the
   daemon down: writes to the dead socket are swallowed, the run is
   wound down through the usual EOF path, and the next connection is
   served normally. *)
let test_daemon_disconnect_mid_stream () =
  let dir = tmpdir "midstream" in
  let config = daemon_config dir ~cache:false in
  let d = start_daemon config in
  let conn = connect config in
  Serve.Client.subscribe conn;
  check "subscribed" true
    (frame_type (expect (Serve.Client.next_frame conn)) = "subscribed");
  let spec =
    Job.of_flags ~kind:`Campaign ~seeds:40 ~protocol:"kset" Protocol.default
  in
  let ack =
    expect
      (Serve.Client.request conn
         (Json.Obj [ ("op", Json.String "submit"); ("spec", Job.to_json spec) ]))
  in
  check "accepted" true (Json.member "accepted" ack = Some (Json.Bool true));
  (* consume one in-flight frame, then hang up with the stream open *)
  ignore (expect (Serve.Client.next_frame conn));
  Serve.Client.close conn;
  let conn = connect config in
  let v = expect (Serve.Client.status conn) in
  (match Json.member "jobs" v with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "no record of the abandoned job");
  ignore (expect (Serve.Client.shutdown conn));
  Serve.Client.close conn;
  Domain.join d;
  rm_rf dir

(* The decoder contract the daemon's [poll_frames] and every [--follow]
   client rely on: a connection that dies mid-telemetry-frame leaves a
   truncated line; on reconnect-resync the bad line is reported once and
   decoding continues with the next valid frame. *)
let test_stream_decoder_mid_telemetry_cut () =
  let frame seq dn =
    Printf.sprintf
      "{\"type\":\"telemetry\",\"id\":1,\"seq\":%d,\"done\":%d,\"total\":8}" seq dn
  in
  let dec = Json.Stream.decoder () in
  Json.Stream.feed dec (frame 0 2 ^ "\n");
  (match Json.Stream.next dec with
  | `Value v -> check "first frame" true (frame_type v = "telemetry")
  | _ -> Alcotest.fail "expected first telemetry frame");
  (* the peer dies mid-frame: half a telemetry line, no newline *)
  let cut = String.sub (frame 1 4) 0 20 in
  Json.Stream.feed dec cut;
  check "partial frame awaits" true (Json.Stream.next dec = `Await);
  check "partial bytes buffered" true (Json.Stream.pending dec > 0);
  (* resync: the rest of the stream starts at a fresh frame, so the
     spliced line is garbage — reported as one error, then recovery *)
  Json.Stream.feed dec ("\n" ^ frame 2 6 ^ "\n");
  (match Json.Stream.next dec with
  | `Error _ -> ()
  | _ -> Alcotest.fail "truncated line must surface as an error");
  (match Json.Stream.next dec with
  | `Value v ->
      check "decoder recovered" true
        (frame_type v = "telemetry"
        && Json.member "seq" v = Some (Json.Int 2))
  | _ -> Alcotest.fail "expected recovery after the bad line");
  check "decoder drained" true (Json.Stream.next dec = `Await)

(* ------------------------------------------------------------------ *)
(* Crash safety: journal replay, queueing, restart, watchdog           *)
(* ------------------------------------------------------------------ *)

let pool_specs =
  [|
    Job.of_flags ~kind:`Campaign ~seeds:2 ~protocol:"kset" Protocol.default;
    Job.of_flags ~kind:`Campaign ~seeds:3 ~protocol:"wheels" Protocol.default;
    Job.of_flags ~kind:`Run ~protocol:"psi" Protocol.default;
  |]

type jevent =
  | Accept of int * int  (* id, pool spec index *)
  | Term of int * string  (* id, terminal state *)
  | Noise of int  (* non-terminal transitions and unknown entry types *)

let jevent_entry = function
  | Accept (id, s) -> Serve.Recovery.accepted_entry ~id pool_specs.(s)
  | Term (id, st) ->
      Serve.Recovery.state_entry ~id
        ~extra:
          [
            ("exit", Json.Int 0);
            ("signature", Json.String (Printf.sprintf "sig%d" id));
          ]
        st
  | Noise 0 -> Serve.Recovery.state_entry ~id:1 "running"
  | Noise 1 -> Serve.Recovery.state_entry ~id:1 "retrying"
  | Noise _ -> Json.Obj [ ("type", Json.String "wat") ]

(* Reference replay semantics, folded independently of the production
   loader: first accept per id wins, first terminal entry per accepted
   id wins, pending keeps acceptance order. *)
let expected_replay events =
  let accepted = Hashtbl.create 8 and order = ref [] in
  let finished = Hashtbl.create 8 and forder = ref [] in
  let next = ref 1 in
  List.iter
    (function
      | Accept (id, s) when not (Hashtbl.mem accepted id) ->
          Hashtbl.replace accepted id s;
          order := id :: !order;
          if id >= !next then next := id + 1
      | Term (id, st) when Hashtbl.mem accepted id && not (Hashtbl.mem finished id)
        ->
          Hashtbl.replace finished id st;
          forder := id :: !forder
      | _ -> ())
    events;
  let completed = List.rev_map (fun id -> (id, Hashtbl.find finished id)) !forder in
  let pending =
    List.rev !order
    |> List.filter (fun id -> not (Hashtbl.mem finished id))
    |> List.map (fun id -> (id, Job.canonical pool_specs.(Hashtbl.find accepted id)))
  in
  (completed, pending, !next)

let gen_jevent =
  QCheck.Gen.(
    let* id = int_range 1 6 in
    oneof
      [
        map (fun s -> Accept (id, s)) (int_range 0 2);
        map
          (fun st -> Term (id, st))
          (oneofl [ "done"; "cancelled"; "poisoned"; "rejected" ]);
        oneofl [ Noise 0; Noise 1; Noise 2 ];
      ])

(* The recovery invariant the restart path rests on: however the journal
   is cut (a crash can stop a write at any byte), the replayed view is
   exactly the reference fold over the surviving complete lines — no
   duplicated terminal records, no resurrected jobs, no exception. *)
let qcheck_recovery_replay =
  QCheck.Test.make ~count:60
    ~name:"Recovery: truncated journal replays a consistent prefix"
    (QCheck.make
       QCheck.Gen.(
         pair (list_size (int_range 0 30) gen_jevent) (int_range 0 max_int)))
    (fun (events, cutraw) ->
      let dir = tmpdir "recovery_qc" in
      let jpath = Serve.journal_path dir in
      let t = Journal.append_open ~fsync:false jpath in
      List.iter (fun e -> Journal.append t (jevent_entry e)) events;
      Journal.close t;
      let contents = In_channel.with_open_bin jpath In_channel.input_all in
      let size = String.length contents in
      let cut = cutraw mod (size + 1) in
      let lines = ref 0 in
      String.iteri (fun i c -> if i < cut && c = '\n' then incr lines) contents;
      let surviving = max 0 (!lines - 1) in
      let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd cut;
      Unix.close fd;
      let r = Serve.Recovery.load jpath in
      let ecompleted, epending, enext =
        expected_replay (List.filteri (fun i _ -> i < surviving) events)
      in
      let got_completed =
        List.map
          (fun (f : Serve.Recovery.completed) ->
            (f.Serve.Recovery.f_id, Serve.state_to_string f.f_state))
          r.Serve.Recovery.completed
      in
      let got_pending =
        List.map
          (fun (p : Serve.Recovery.pending) ->
            (p.Serve.Recovery.p_id, Job.canonical p.p_spec))
          r.Serve.Recovery.pending
      in
      let ok =
        got_completed = ecompleted && got_pending = epending
        && r.Serve.Recovery.next_id = enext
      in
      rm_rf dir;
      ok)

(* The bounded FIFO: a second spec queues behind the running job, the
   same spec attaches instead of duplicating, a third spec is shed with
   an explicit queue-full rejection, and a queued job cancels
   immediately. *)
let test_daemon_queue_full_dedup_cancel () =
  let dir = tmpdir "queue" in
  let config =
    { (daemon_config dir ~cache:false) with Serve.queue_depth = 1; jobs = Some 1 }
  in
  let d = start_daemon config in
  let conn1 = connect config in
  let spec_a =
    Job.of_flags ~kind:`Campaign ~seeds:40 ~protocol:"kset" Protocol.default
  in
  let spec_b =
    Job.of_flags ~kind:`Campaign ~seeds:41 ~protocol:"kset" Protocol.default
  in
  let spec_c =
    Job.of_flags ~kind:`Campaign ~seeds:42 ~protocol:"kset" Protocol.default
  in
  let submit_raw conn spec =
    expect
      (Serve.Client.request conn
         (Json.Obj [ ("op", Json.String "submit"); ("spec", Job.to_json spec) ]))
  in
  let ack_a = submit_raw conn1 spec_a in
  check "A accepted" true (Json.member "accepted" ack_a = Some (Json.Bool true));
  (* Wait until A occupies the executor so B lands in the queue. *)
  let conn2 = connect config in
  let rec wait_running n =
    if n = 0 then Alcotest.fail "job A never started running";
    match Json.member "running" (expect (Serve.Client.status conn2)) with
    | Some (Json.Int _) -> ()
    | _ ->
        Unix.sleepf 0.02;
        wait_running (n - 1)
  in
  wait_running 200;
  let ack_b = submit_raw conn2 spec_b in
  check "B accepted" true (Json.member "accepted" ack_b = Some (Json.Bool true));
  check "B queued at position 1" true
    (Json.member "position" ack_b = Some (Json.Int 1));
  let b_id = match Json.member "id" ack_b with Some (Json.Int i) -> i | _ -> -1 in
  let conn3 = connect config in
  (* Same canonical spec: attach to B's record, no duplicate execution. *)
  let ack_b2 = submit_raw conn3 spec_b in
  check "resubmit attached" true
    (Json.member "attached" ack_b2 = Some (Json.Bool true));
  check "attached to the same id" true
    (Json.member "id" ack_b2 = Some (Json.Int b_id));
  (* Queue full (depth 1, B holds the slot): explicit shed, no record. *)
  let ack_c = submit_raw conn3 spec_c in
  check "C rejected" true
    (Json.member "accepted" ack_c = Some (Json.Bool false));
  check "C rejection names the queue" true
    (Json.member "rejected" ack_c = Some (Json.String "queue full"));
  (match Json.member "jobs" (expect (Serve.Client.status conn3)) with
  | Some (Json.List records) ->
      check_int "shed submission left no record" 2 (List.length records)
  | _ -> Alcotest.fail "status has no jobs list");
  (* Cancel B while queued: immediate done frame, state cancelled. *)
  Serve.Client.cancel conn2;
  let rec drain_done conn =
    let v = expect (Serve.Client.next_frame conn) in
    if frame_type v = "done" then v else drain_done conn
  in
  let v = drain_done conn2 in
  check "cancelled B" true (Json.member "id" v = Some (Json.Int b_id));
  check "queued cancel is immediate" true
    (Json.member "state" v = Some (Json.String "cancelled"));
  check "cancelled exit code" true (Json.member "exit" v = Some (Json.Int 4));
  (* A still runs to completion on conn1. *)
  let v = drain_done conn1 in
  check "A finished" true (Json.member "state" v = Some (Json.String "done"));
  ignore (expect (Serve.Client.shutdown conn3));
  Serve.Client.close conn1;
  Serve.Client.close conn2;
  Serve.Client.close conn3;
  Domain.join d;
  rm_rf dir

(* Restart resumes: a finished job is replayed into [status] from the
   journal; an interrupted (accepted+running, no terminal entry) job is
   re-enqueued and — with the cache intact — re-resolves to the same
   signature without executing anything; a stale socket file left by a
   crash is swept; a second daemon on a live socket is refused. *)
let test_daemon_restart_resume () =
  let dir = tmpdir "restart" in
  let config = daemon_config dir ~cache:true in
  let d = start_daemon config in
  let conn = connect config in
  let v = expect (Serve.Client.submit conn small_spec) in
  check "cold run done" true (frame_type v = "done");
  let sig_cold = Json.member "signature" v in
  (* A second daemon pointed at the live socket must refuse, not steal. *)
  (try
     Serve.serve
       ~config:{ config with Serve.out_dir = Filename.concat dir "other" }
       ();
     Alcotest.fail "second daemon bound a live socket"
   with Failure e -> check "live socket refused" true (e <> ""));
  ignore (expect (Serve.Client.shutdown conn));
  Serve.Client.close conn;
  Domain.join d;
  (* Restart on the same journal: the finished job is replayed. *)
  let d = start_daemon config in
  let conn = connect config in
  let v = expect (Serve.Client.status conn) in
  (match Json.member "jobs" v with
  | Some (Json.List [ r ]) ->
      check "replayed record is done" true
        (Json.member "state" r = Some (Json.String "done"));
      check "replayed record keeps its signature" true
        (Json.member "signature" r = sig_cold)
  | _ -> Alcotest.fail "restart did not replay exactly one record");
  ignore (expect (Serve.Client.shutdown conn));
  Serve.Client.close conn;
  Domain.join d;
  (* Crash scenario: fabricate the journal a kill -9 would leave —
     accepted + running, no terminal entry — plus a stale socket file,
     against the warm cache.  The restart must sweep the socket, requeue
     the job and resolve it entirely from the cache. *)
  let dir2 = Filename.concat dir "after_crash" in
  let config2 =
    {
      config with
      Serve.out_dir = dir2;
      socket_path = Filename.concat dir "fdkit2.sock";
    }
  in
  let t = Journal.append_open (Serve.journal_path dir2) in
  Journal.append t (Serve.Recovery.accepted_entry ~id:7 small_spec);
  Journal.append t (Serve.Recovery.state_entry ~id:7 "running");
  Journal.close t;
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX config2.Serve.socket_path);
  Unix.close stale;
  check "stale socket file present" true
    (Sys.file_exists config2.Serve.socket_path);
  let d = Domain.spawn (fun () -> Serve.serve ~config:config2 ()) in
  let conn =
    match
      Serve.Client.connect_retry ~attempts:8 ~backoff_s:0.05
        config2.Serve.socket_path
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let rec wait_done n =
    if n = 0 then Alcotest.fail "resumed job never finished";
    match Json.member "jobs" (expect (Serve.Client.status conn)) with
    | Some (Json.List [ r ]) when Json.member "state" r = Some (Json.String "done")
      ->
        r
    | _ ->
        Unix.sleepf 0.05;
        wait_done (n - 1)
  in
  let r = wait_done 200 in
  check "resumed job kept its id" true (Json.member "id" r = Some (Json.Int 7));
  check "resumed flag set" true
    (Json.member "resumed" r = Some (Json.Bool true));
  check "resumed entirely from cache" true
    (Json.member "executed" r = Some (Json.Int 0));
  check "every seed was a cache hit" true
    (Json.member "cache_hits" r = Some (Json.Int seeds));
  check "resumed signature = cold signature" true
    (Json.member "signature" r = sig_cold);
  ignore (expect (Serve.Client.shutdown conn));
  Serve.Client.close conn;
  Domain.join d;
  rm_rf dir

(* The watchdog: a job that blows its per-attempt deadline is retried
   with backoff (announced with a retry frame) and, once the budget is
   spent, poisoned — exit 6, counted, and quarantined with a
   ready-to-paste resubmission spec on disk. *)
let test_daemon_deadline_retry_poison () =
  let dir = tmpdir "poison" in
  let config =
    {
      (daemon_config dir ~cache:false) with
      Serve.default_deadline_s = 0.05;
      retry_budget = 1;
      retry_backoff_s = 0.01;
    }
  in
  let d = start_daemon config in
  let conn = connect config in
  let spec =
    Job.of_flags ~kind:`Campaign ~seeds:200 ~protocol:"kset" Protocol.default
  in
  let retries = ref 0 in
  let on_event v = if frame_type v = "retry" then incr retries in
  let v = expect (Serve.Client.submit ~on_event conn spec) in
  check "terminal frame is done" true (frame_type v = "done");
  check "poisoned" true (Json.member "state" v = Some (Json.String "poisoned"));
  check "poison exit code" true (Json.member "exit" v = Some (Json.Int 6));
  check_int "one retry before poisoning" 1 !retries;
  check "deadline named as the reason" true
    (match Json.member "reason" v with
    | Some (Json.String r) -> String.length r > 0
    | _ -> false);
  (match Json.member "replay" v with
  | Some (Json.String cmd) ->
      check "replay command present" true
        (String.length cmd > 0
        && String.length cmd > 13
        && String.sub cmd 0 13 = "fdkit submit ");
      (* the quarantined spec on disk round-trips to the original *)
      let path = String.sub cmd 20 (String.length cmd - 20) in
      check "poison spec round-trips" true
        (match Json.of_string (In_channel.with_open_bin path In_channel.input_all) with
        | Ok j -> (
            match Job.of_json j with
            | Ok s -> Job.equal s spec
            | Error _ -> false)
        | Error _ -> false)
  | _ -> Alcotest.fail "done frame has no replay command");
  let v = expect (Serve.Client.status conn) in
  (match Json.member "counters" v with
  | Some counters ->
      check "retry counted" true
        (Json.member "jobs_retried" counters = Some (Json.Int 1));
      check "poison counted" true
        (Json.member "jobs_poisoned" counters = Some (Json.Int 1))
  | None -> Alcotest.fail "status has no counters");
  ignore (expect (Serve.Client.shutdown conn));
  Serve.Client.close conn;
  Domain.join d;
  rm_rf dir

let () =
  let qc =
    List.map
      (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |]))
      [ qcheck_spec_roundtrip; qcheck_canonical_text_roundtrip ]
  in
  Alcotest.run "job"
    [
      ( "spec",
        [
          Alcotest.test_case "canonical pinned" `Quick test_canonical_pinned;
          Alcotest.test_case "of_flags defaults" `Quick test_of_flags_defaults;
          Alcotest.test_case "validate" `Quick test_validate;
        ]
        @ qc );
      ( "cache",
        [
          Alcotest.test_case "cold/warm byte-identical" `Quick
            test_cache_cold_warm_identical;
          Alcotest.test_case "-j1 = -jN warm" `Quick test_cache_j1_equals_jn;
          Alcotest.test_case "fingerprint invalidation" `Quick
            test_cache_fingerprint_invalidation;
          Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity;
          Alcotest.test_case "rt never cached" `Quick test_rt_jobs_never_cached;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "submit/stream/status/shutdown" `Quick
            test_daemon_submit_stream_status_shutdown;
          Alcotest.test_case "cancel" `Quick test_daemon_cancel;
          Alcotest.test_case "eof cancels" `Quick test_daemon_eof_cancels;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "subscribe/unsubscribe + inertness" `Quick
            test_daemon_telemetry_subscription;
          Alcotest.test_case "mid-run toggle races" `Quick
            test_daemon_subscription_races;
          Alcotest.test_case "disconnect mid-stream" `Quick
            test_daemon_disconnect_mid_stream;
          Alcotest.test_case "decoder survives mid-frame cut" `Quick
            test_stream_decoder_mid_telemetry_cut;
        ] );
      ( "recovery",
        [
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 42 |])
            qcheck_recovery_replay;
          Alcotest.test_case "queue full / dedup attach / cancel queued" `Quick
            test_daemon_queue_full_dedup_cancel;
          Alcotest.test_case "restart replay + crash resume" `Quick
            test_daemon_restart_resume;
          Alcotest.test_case "deadline retry then poison" `Quick
            test_daemon_deadline_retry_poison;
        ] );
    ]
