(* Tests for the Ω_k-based k-set agreement algorithm (paper Figure 3):
   validity / agreement / termination across seeds, crash patterns and
   oracle behaviours; the §3.2 oracle-efficiency and zero-degradation
   claims; interaction with weaker/stronger oracles; qcheck randomized
   sweeps. *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd
open Setagree_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type outcome = {
  verdict : Check.verdict;
  rounds : int;
  handle : Kset.t;
  sim : Sim.t;
}

let run_kset ?(n = 7) ?(t = 3) ?(z = 2) ?(k = 2) ?(crashes = Crash.No_crashes)
    ?(behavior = Behavior.stormy ~gst:40.0) ?(delay = Delay.default)
    ?(tie_break = Kset.Smallest) ~seed () =
  let sim = Sim.create ~horizon:3000.0 ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim (Crash.generate crashes ~n ~t rng);
  let omega, _ = Oracle.omega_z sim ~z ~behavior () in
  let proposals = Array.init n (fun i -> 100 + i) in
  let h = Kset.install sim ~omega ~proposals ~delay ~tie_break () in
  let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
  let verdict = Check.k_set_agreement sim ~k ~proposals ~decisions:(Kset.decisions h) in
  { verdict; rounds = Kset.max_round h; handle = h; sim }

let assert_ok o label =
  if not (Check.verdict_ok o.verdict) then
    Alcotest.failf "%s: %s" label (String.concat "; " o.verdict.notes)

let test_solves_across_seeds () =
  for seed = 1 to 8 do
    let o =
      run_kset ~seed ~crashes:(Crash.Exactly { crashes = 2; window = (0.0, 30.0) }) ()
    in
    assert_ok o (Printf.sprintf "seed %d" seed)
  done

let test_consensus_z1 () =
  for seed = 1 to 5 do
    let o =
      run_kset ~seed ~z:1 ~k:1
        ~crashes:(Crash.Exactly { crashes = 3; window = (0.0, 30.0) })
        ()
    in
    assert_ok o (Printf.sprintf "consensus seed %d" seed)
  done

let test_max_failures () =
  (* t crashes, all hitting before gst, stormy oracle. *)
  let o =
    run_kset ~seed:17 ~z:2 ~k:2
      ~crashes:(Crash.Exactly { crashes = 3; window = (0.0, 10.0) })
      ()
  in
  assert_ok o "t crashes"

let test_no_crash_fast_path () =
  (* Perfect oracle + no crash: decide in round 1, two communication steps
     (oracle efficiency, §3.2). *)
  let o = run_kset ~seed:2 ~z:1 ~k:1 ~behavior:Behavior.perfect () in
  assert_ok o "fast path";
  check_int "one round" 1 o.rounds

let test_zero_degradation () =
  (* Initial crashes only + perfect oracle: still round 1 (§3.2). *)
  let o =
    run_kset ~seed:3 ~z:1 ~k:1 ~behavior:Behavior.perfect
      ~crashes:(Crash.Initial [ 5; 6 ]) ()
  in
  assert_ok o "zero degradation";
  check_int "one round" 1 o.rounds

let test_zero_degradation_all_z () =
  List.iter
    (fun z ->
      let o =
        run_kset ~seed:4 ~z ~k:z ~behavior:Behavior.perfect ~crashes:(Crash.Initial [ 6 ]) ()
      in
      assert_ok o "zero degradation z";
      check_int "one round" 1 o.rounds)
    [ 1; 2; 3 ]

let test_noisy_oracle_delays_but_terminates () =
  let o =
    run_kset ~seed:5 ~z:2 ~k:2
      ~behavior:(Behavior.make ~noise:0.5 ~slander:0.3 ~gst:60.0 ())
      ()
  in
  assert_ok o "noisy";
  check "took multiple rounds" true (o.rounds > 1)

let test_stronger_oracle_weaker_goal () =
  (* Ω_1 trivially solves k-set for any k >= 1. *)
  List.iter
    (fun k ->
      let o = run_kset ~seed:6 ~z:1 ~k () in
      assert_ok o "omega_1 solves k-set")
    [ 1; 2; 3 ]

let test_requires_majority () =
  let sim = Sim.create ~n:6 ~t:3 ~seed:1 () in
  let omega, _ = Oracle.omega_z sim ~z:1 () in
  check "t >= n/2 rejected" true
    (try
       ignore (Kset.install sim ~omega ~proposals:(Array.make 6 0) ());
       false
     with Invalid_argument _ -> true)

let test_bad_proposals_length () =
  let sim = Sim.create ~n:7 ~t:3 ~seed:1 () in
  let omega, _ = Oracle.omega_z sim ~z:1 () in
  check "bad proposals" true
    (try
       ignore (Kset.install sim ~omega ~proposals:(Array.make 3 0) ());
       false
     with Invalid_argument _ -> true)

let test_decisions_recorded_in_trace () =
  let o = run_kset ~seed:7 () in
  let trace_decisions = Trace.decisions (Sim.trace o.sim) in
  check_int "trace matches handle" (List.length (Kset.decisions o.handle))
    (List.length trace_decisions)

let test_identical_proposals_single_value () =
  let sim = Sim.create ~horizon:3000.0 ~n:7 ~t:3 ~seed:8 () in
  let omega, _ = Oracle.omega_z sim ~z:3 () in
  let proposals = Array.make 7 55 in
  let h = Kset.install sim ~omega ~proposals () in
  let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
  List.iter (fun (_, v, _, _) -> check_int "only proposed value" 55 v) (Kset.decisions h)

let test_crashed_before_start_never_decides () =
  let sim = Sim.create ~horizon:3000.0 ~n:7 ~t:3 ~seed:9 () in
  Sim.install_crashes sim [ (4, 0.0) ];
  let omega, _ = Oracle.omega_z sim ~z:1 () in
  let proposals = Array.init 7 (fun i -> i) in
  let h = Kset.install sim ~omega ~proposals () in
  let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
  check "dead never decides" true (Kset.decided h 4 = None)

let test_heavy_delay_spread () =
  let o =
    run_kset ~seed:10 ~delay:(Delay.Exponential 2.0)
      ~crashes:(Crash.Exactly { crashes = 2; window = (0.0, 20.0) })
      ()
  in
  assert_ok o "exponential delays"

let test_adversarial_tie_break_still_k () =
  (* By_pid is legal: agreement at k >= z must still hold. *)
  for seed = 1 to 5 do
    let o = run_kset ~seed ~z:2 ~k:2 ~tie_break:Kset.By_pid () in
    assert_ok o "by_pid legal"
  done

let test_messages_grow_with_rounds () =
  let quick = run_kset ~seed:11 ~behavior:Behavior.perfect () in
  let slow = run_kset ~seed:11 ~behavior:(Behavior.stormy ~gst:60.0) () in
  check "more rounds, more messages" true
    (Kset.messages_sent slow.handle > Kset.messages_sent quick.handle)

let test_decider_crashes_mid_relay () =
  (* The strongest adversary for the decision path: crash the very first
     decider at its decision instant, with the DECISION relay staggered so
     the broadcast is cut short.  Everyone else must still decide — through
     the echo relay of whoever the partial broadcast reached (the paper's
     task T2 rationale), or through their own rounds. *)
  for seed = 1 to 5 do
    let n = 7 and t = 3 in
    let sim = Sim.create ~horizon:3000.0 ~n ~t ~seed () in
    let rng = Rng.split_named (Sim.rng sim) "crash" in
    Sim.install_crashes sim
      (Crash.generate (Crash.Exactly { crashes = 2; window = (0.0, 20.0) }) ~n ~t rng);
    let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:(Behavior.stormy ~gst:40.0) () in
    let proposals = Array.init n (fun i -> 100 + i) in
    let h = Kset.install sim ~omega ~proposals ~decision_stagger:0.01 () in
    let killed = ref false in
    (* Watcher: a reactive adversary hosted by a process that survives the
       scheduled crashes (it may still kill its own host below). *)
    let watcher = Pidset.min_elt (Sim.correct_set sim) in
    Sim.spawn sim ~pid:watcher (fun () ->
        Sim.Cond.await [ Sim.Cond.poll sim ] (fun () -> Kset.decisions h <> []);
        if not !killed then begin
          killed := true;
          match Kset.decisions h with
          | (p, _, _, _) :: _ -> if not (Sim.is_crashed sim p) then Sim.crash_now sim p
          | [] -> ()
        end);
    let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
    let v = Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h) in
    (* The first decider is now crashed; the checker only requires the
       correct processes to decide, and single-value agreement overall. *)
    if not (Check.verdict_ok v) then
      Alcotest.failf "seed %d: %s" seed (String.concat "; " v.Check.notes);
    check "adversary fired" true !killed
  done

let test_consensus_over_lossy_links () =
  (* The whole algorithm over 30% message loss: the stubborn transport
     restores the reliable-channel assumption, so agreement must hold and
     the run merely costs more raw link traffic and latency. *)
  for seed = 1 to 3 do
    let n = 7 and t = 3 in
    let sim = Sim.create ~horizon:3000.0 ~n ~t ~seed () in
    let rng = Rng.split_named (Sim.rng sim) "crash" in
    Sim.install_crashes sim
      (Crash.generate (Crash.Exactly { crashes = 2; window = (0.0, 20.0) }) ~n ~t rng);
    let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:(Behavior.stormy ~gst:40.0) () in
    let proposals = Array.init n (fun i -> 100 + i) in
    let h = Kset.install sim ~omega ~proposals ~loss:0.3 () in
    let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
    let v = Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h) in
    if not (Check.verdict_ok v) then
      Alcotest.failf "lossy seed %d: %s" seed (String.concat "; " v.Check.notes)
  done

let test_crash_now_respects_bound () =
  let sim = Sim.create ~n:5 ~t:1 ~seed:1 () in
  Sim.install_crashes sim [ (0, 5.0) ];
  check "t+1-th crash rejected" true
    (try
       Sim.crash_now sim 1;
       false
     with Invalid_argument _ -> true)

let test_lemma2_invariant () =
  (* Lemma 2, witnessed: no round ever carries more than z distinct non-⊥
     estimates, even through pre-stabilization churn and adversarial
     tie-breaks. *)
  List.iter
    (fun (z, seed) ->
      let o =
        run_kset ~seed ~z ~k:z ~tie_break:Kset.By_pid
          ~crashes:(Crash.Exactly { crashes = 2; window = (0.0, 30.0) })
          ()
      in
      let m = Kset.max_distinct_aux o.handle in
      if m > z then Alcotest.failf "z=%d seed=%d: %d distinct aux values" z seed m)
    [ (1, 1); (1, 2); (2, 3); (2, 4); (3, 5); (3, 6) ]

let test_determinism () =
  let d1 = (run_kset ~seed:12 ()).handle |> Kset.decisions in
  let d2 = (run_kset ~seed:12 ()).handle |> Kset.decisions in
  check "same seed same decisions" true (d1 = d2)

let qcheck_agreement =
  QCheck.Test.make ~name:"random (seed, z, crashes): k=z agreement holds" ~count:15
    (QCheck.make
       ~print:(fun (s, z, c) -> Printf.sprintf "seed=%d z=%d crashes=%d" s z c)
       QCheck.Gen.(triple (int_range 100 10_000) (int_range 1 3) (int_range 0 3)))
    (fun (seed, z, crashes) ->
      let o =
        run_kset ~seed ~z ~k:z
          ~crashes:(Crash.Exactly { crashes; window = (0.0, 30.0) })
          ()
      in
      Check.verdict_ok o.verdict)

let qcheck_validity_only_proposed =
  QCheck.Test.make ~name:"decided values are proposals" ~count:10
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 10_000))
    (fun seed ->
      let o = run_kset ~seed ~z:2 ~k:2 () in
      List.for_all (fun (_, v, _, _) -> v >= 100 && v < 107) (Kset.decisions o.handle))

let () =
  Alcotest.run "kset"
    [
      ( "agreement",
        [
          Alcotest.test_case "across seeds" `Quick test_solves_across_seeds;
          Alcotest.test_case "consensus (z=1)" `Quick test_consensus_z1;
          Alcotest.test_case "t crashes" `Quick test_max_failures;
          Alcotest.test_case "noisy oracle" `Quick test_noisy_oracle_delays_but_terminates;
          Alcotest.test_case "stronger oracle" `Quick test_stronger_oracle_weaker_goal;
          Alcotest.test_case "identical proposals" `Quick test_identical_proposals_single_value;
          Alcotest.test_case "by_pid tie-break legal" `Quick test_adversarial_tie_break_still_k;
          Alcotest.test_case "heavy delays" `Quick test_heavy_delay_spread;
        ] );
      ( "performance-claims",
        [
          Alcotest.test_case "oracle efficiency" `Quick test_no_crash_fast_path;
          Alcotest.test_case "zero degradation" `Quick test_zero_degradation;
          Alcotest.test_case "zero degradation all z" `Quick test_zero_degradation_all_z;
          Alcotest.test_case "messages grow with rounds" `Quick test_messages_grow_with_rounds;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "majority required" `Quick test_requires_majority;
          Alcotest.test_case "proposals length" `Quick test_bad_proposals_length;
          Alcotest.test_case "trace decisions" `Quick test_decisions_recorded_in_trace;
          Alcotest.test_case "dead never decides" `Quick test_crashed_before_start_never_decides;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "decider crashes mid-relay" `Quick test_decider_crashes_mid_relay;
          Alcotest.test_case "consensus over lossy links" `Quick test_consensus_over_lossy_links;
          Alcotest.test_case "crash_now bound" `Quick test_crash_now_respects_bound;
          Alcotest.test_case "lemma 2 invariant" `Quick test_lemma2_invariant;
        ] );
      ( "properties",
        List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |])) [ qcheck_agreement; qcheck_validity_only_proposed ]
      );
    ]
