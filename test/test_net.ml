(* Tests for the network substrate: channels, delay models, broadcast and
   the reliable-broadcast implementation (validity, integrity, termination —
   including crash-interrupted partial broadcasts, the case the echo relay
   exists for). *)

open Setagree_util
open Setagree_dsys
open Setagree_net

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk ?(horizon = 1000.0) ?(n = 5) ?(t = 2) ?(seed = 1) () =
  Sim.create ~horizon ~n ~t ~seed ()

(* Delay models *)

let test_delay_constant () =
  let rng = Rng.create 1 in
  Alcotest.(check (float 0.0)) "constant" 2.5
    (Delay.sample (Delay.Constant 2.5) ~rng ~src:0 ~dst:1 ~now:0.0)

let test_delay_uniform_range () =
  let rng = Rng.create 2 in
  for _ = 1 to 200 do
    let d = Delay.sample (Delay.Uniform (1.0, 2.0)) ~rng ~src:0 ~dst:1 ~now:0.0 in
    check "uniform range" true (d >= 1.0 && d < 2.0)
  done

let test_delay_exponential_nonneg () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    check "exp >= 0" true
      (Delay.sample (Delay.Exponential 1.0) ~rng ~src:0 ~dst:1 ~now:0.0 >= 0.0)
  done

let test_delay_fn_adversary () =
  let rng = Rng.create 4 in
  let adv = Delay.Fn (fun ~rng:_ ~src ~dst ~now:_ -> float_of_int ((src * 10) + dst)) in
  Alcotest.(check (float 0.0)) "fn" 12.0 (Delay.sample adv ~rng ~src:1 ~dst:2 ~now:0.0)

let test_delay_clamped () =
  let rng = Rng.create 5 in
  let neg = Delay.Fn (fun ~rng:_ ~src:_ ~dst:_ ~now:_ -> -5.0) in
  Alcotest.(check (float 0.0)) "clamped to 0" 0.0 (Delay.sample neg ~rng ~src:0 ~dst:1 ~now:0.0)

(* Channels *)

let test_send_delivers () =
  let sim = mk () in
  let net : string Net.t = Net.create sim ~delay:(Delay.Constant 1.0) () in
  Net.send net ~src:0 ~dst:1 "hello";
  ignore (Sim.run sim);
  match Net.inbox net 1 with
  | [ e ] ->
      check "payload" true (e.payload = "hello");
      check_int "src" 0 e.src;
      Alcotest.(check (float 0.001)) "delivered_at" 1.0 e.delivered_at
  | l -> Alcotest.failf "expected 1 message, got %d" (List.length l)

let test_no_loss_no_dup () =
  let sim = mk () in
  let net : int Net.t = Net.create sim () in
  for i = 1 to 100 do
    Net.send net ~src:0 ~dst:1 i
  done;
  ignore (Sim.run sim);
  let got = List.map (fun e -> e.Net.payload) (Net.inbox net 1) in
  Alcotest.(check (list int)) "all delivered exactly once" (List.init 100 (fun i -> i + 1))
    (List.sort compare got)

let test_non_fifo_possible () =
  (* With spread-out delays, some pair of messages is reordered. *)
  let sim = mk ~seed:3 () in
  let net : int Net.t = Net.create sim ~delay:(Delay.Uniform (0.1, 10.0)) () in
  for i = 1 to 50 do
    Net.send net ~src:0 ~dst:1 i
  done;
  ignore (Sim.run sim);
  let got = List.map (fun e -> e.Net.payload) (Net.inbox net 1) in
  check "reordering observed" true (got <> List.sort compare got)

let test_send_from_crashed_dropped () =
  let sim = mk () in
  Sim.install_crashes sim [ (0, 1.0) ];
  let net : int Net.t = Net.create sim ~delay:(Delay.Constant 1.0) () in
  Sim.schedule sim ~delay:5.0 (fun () -> Net.send net ~src:0 ~dst:1 99);
  ignore (Sim.run sim);
  check_int "dead senders send nothing" 0 (List.length (Net.inbox net 1))

let test_send_to_crashed_dropped () =
  let sim = mk () in
  Sim.install_crashes sim [ (1, 0.5) ];
  let net : int Net.t = Net.create sim ~delay:(Delay.Constant 2.0) () in
  Net.send net ~src:0 ~dst:1 7;
  ignore (Sim.run sim);
  check_int "no delivery to the dead" 0 (List.length (Net.inbox net 1))

let test_in_flight_survives_sender_crash () =
  let sim = mk () in
  Sim.install_crashes sim [ (0, 1.0) ];
  let net : int Net.t = Net.create sim ~delay:(Delay.Constant 5.0) () in
  Net.send net ~src:0 ~dst:1 42;
  ignore (Sim.run sim);
  check_int "in-flight delivered" 1 (List.length (Net.inbox net 1))

let test_send_at_adversarial () =
  let sim = mk () in
  let net : int Net.t = Net.create sim () in
  Net.send_at net ~src:0 ~dst:1 ~deliver_at:33.25 5;
  ignore (Sim.run sim);
  match Net.inbox net 1 with
  | [ e ] -> Alcotest.(check (float 0.001)) "exact time" 33.25 e.delivered_at
  | _ -> Alcotest.fail "one message expected"

let test_broadcast_reaches_all () =
  let sim = mk ~n:5 () in
  let net : string Net.t = Net.create sim () in
  Net.broadcast net ~src:2 "b";
  ignore (Sim.run sim);
  for i = 0 to 4 do
    check_int "everyone got it (incl. sender)" 1 (List.length (Net.inbox net i))
  done

let test_broadcast_staggered_partial_on_crash () =
  let sim = mk ~n:5 ~t:1 () in
  Sim.install_crashes sim [ (0, 1.0) ];
  let net : int Net.t = Net.create sim ~delay:(Delay.Constant 0.1) () in
  (* Sender p0 crashes at 1.0; with step 0.4 it reaches only destinations
     0, 1, 2 (sent at 0.0, 0.4, 0.8). *)
  Net.broadcast_staggered net ~src:0 ~step:0.4 7;
  ignore (Sim.run sim);
  let receivers =
    List.filter (fun i -> Net.inbox net i <> []) (List.init 5 Fun.id)
  in
  Alcotest.(check (list int)) "prefix only" [ 0; 1; 2 ] receivers

let test_recv_filter_count_senders () =
  let sim = mk () in
  let net : int Net.t = Net.create sim () in
  Net.send net ~src:0 ~dst:3 1;
  Net.send net ~src:1 ~dst:3 2;
  Net.send net ~src:1 ~dst:3 3;
  ignore (Sim.run sim);
  check_int "filter evens" 1 (List.length (Net.recv_filter net 3 (fun e -> e.payload mod 2 = 0)));
  check_int "count" 3 (Net.recv_count net 3 (fun _ -> true));
  check "distinct senders" true
    (Pidset.equal (Net.distinct_senders net 3 (fun _ -> true)) (Pidset.of_list [ 0; 1 ]))

let test_on_deliver_callbacks () =
  let sim = mk () in
  let net : int Net.t = Net.create sim () in
  let seen = ref [] in
  Net.on_deliver net (fun e -> seen := (e.dst, e.payload) :: !seen);
  Net.send net ~src:0 ~dst:2 9;
  ignore (Sim.run sim);
  Alcotest.(check (list (pair int int))) "callback fired" [ (2, 9) ] !seen

let test_retain_false_empty_inbox () =
  let sim = mk () in
  let net : int Net.t = Net.create sim ~retain:false () in
  let count = ref 0 in
  Net.on_deliver net (fun _ -> incr count);
  Net.send net ~src:0 ~dst:1 1;
  ignore (Sim.run sim);
  check_int "callback still fires" 1 !count;
  check_int "inbox empty" 0 (List.length (Net.inbox net 1));
  check_int "counter still counts" 1 (Net.delivered_count net)

let test_counters () =
  let sim = mk ~n:5 () in
  let net : unit Net.t = Net.create sim () in
  Net.broadcast net ~src:0 ();
  ignore (Sim.run sim);
  check_int "sent" 5 (Net.sent_count net);
  check_int "delivered" 5 (Net.delivered_count net)

let test_cursor_recv_since () =
  let sim = mk () in
  let net : int Net.t = Net.create sim ~delay:(Delay.Constant 1.0) () in
  Net.send net ~src:0 ~dst:1 1;
  Net.send net ~src:2 ~dst:1 2;
  ignore (Sim.run sim);
  let c = Net.mail_cursor net 1 in
  check_int "cursor = mailbox length" 2 c;
  Net.send net ~src:0 ~dst:1 3;
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "only what arrived after the cursor" [ 3 ]
    (List.map (fun e -> e.Net.payload) (Net.recv_since net 1 ~cursor:c));
  Alcotest.(check (list int)) "cursor 0 = whole inbox"
    (List.map (fun e -> e.Net.payload) (Net.inbox net 1))
    (List.map (fun e -> e.Net.payload) (Net.recv_since net 1 ~cursor:0))

let test_keyed_index_matches_filters () =
  (* The delivery-time keyed index must agree with the old rescan-the-inbox
     accessors, including order. *)
  let sim = mk ~seed:9 () in
  let net : int Net.t =
    Net.create sim ~delay:(Delay.Uniform (0.1, 3.0)) ~classify:(fun m -> m mod 2) ()
  in
  for i = 1 to 40 do
    Net.send net ~src:(i mod 4) ~dst:4 i
  done;
  ignore (Sim.run sim);
  List.iter
    (fun key ->
      let f (e : int Net.envelope) = e.payload mod 2 = key in
      check_int "count" (Net.recv_count net 4 f) (Net.keyed_count net 4 key);
      check "senders" true
        (Pidset.equal (Net.distinct_senders net 4 f) (Net.keyed_senders net 4 key));
      Alcotest.(check (list int)) "envelopes in delivery order"
        (List.map (fun e -> e.Net.payload) (Net.recv_filter net 4 f))
        (List.map (fun e -> e.Net.payload) (Net.keyed_envs net 4 key)))
    [ 0; 1 ];
  check_int "absent key count" 0 (Net.keyed_count net 4 7);
  check "absent key senders" true (Pidset.is_empty (Net.keyed_senders net 4 7));
  check_int "absent key envs" 0 (List.length (Net.keyed_envs net 4 7))

let test_keyed_index_with_retain_false () =
  let sim = mk () in
  let net : int Net.t = Net.create sim ~retain:false ~classify:(fun m -> m) () in
  Net.send net ~src:0 ~dst:1 5;
  Net.send net ~src:2 ~dst:1 5;
  ignore (Sim.run sim);
  check_int "inbox empty" 0 (List.length (Net.inbox net 1));
  check_int "keyed count still maintained" 2 (Net.keyed_count net 1 5);
  check "keyed senders still maintained" true
    (Pidset.equal (Pidset.of_list [ 0; 2 ]) (Net.keyed_senders net 1 5))

let test_handlers_run_in_registration_order () =
  let sim = mk () in
  let net : int Net.t = Net.create sim () in
  let order = ref [] in
  Net.on_deliver net (fun _ -> order := 1 :: !order);
  Net.on_deliver net (fun _ -> order := 2 :: !order);
  Net.send net ~src:0 ~dst:1 0;
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "registration order" [ 1; 2 ] (List.rev !order)

let test_delivery_signals_cond () =
  let sim = mk () in
  let net : int Net.t = Net.create sim ~delay:(Delay.Constant 1.0) () in
  let woke = ref false in
  Sim.spawn sim ~pid:1 (fun () ->
      Sim.Cond.await [ Net.cond net 1 ] (fun () -> Net.inbox net 1 <> []);
      woke := true);
  Net.send net ~src:0 ~dst:1 5;
  ignore (Sim.run sim);
  check "delivery woke the waiter" true !woke

(* Reliable broadcast *)

let test_rb_basic_delivery () =
  let sim = mk ~n:5 () in
  let rb : string Rbcast.t = Rbcast.create sim () in
  Rbcast.broadcast rb ~src:1 "m";
  ignore (Sim.run sim);
  for i = 0 to 4 do
    match Rbcast.delivered rb i with
    | [ d ] ->
        check "payload" true (d.body = "m");
        check_int "origin" 1 d.origin
    | l -> Alcotest.failf "p%d delivered %d times" (i + 1) (List.length l)
  done

let test_rb_integrity_no_duplicates () =
  let sim = mk ~n:5 () in
  let rb : int Rbcast.t = Rbcast.create sim () in
  for k = 1 to 20 do
    Rbcast.broadcast rb ~src:(k mod 5) k
  done;
  ignore (Sim.run sim);
  for i = 0 to 4 do
    let got = List.map (fun (d : int Rbcast.delivery) -> d.body) (Rbcast.delivered rb i) in
    Alcotest.(check (list int)) "each message once" (List.init 20 (fun k -> k + 1))
      (List.sort compare got)
  done

let test_rb_termination_under_origin_crash () =
  (* Origin crashes mid-staggered-broadcast: having reached one process, the
     relay must spread the message to every correct process. *)
  let sim = mk ~n:5 ~t:1 ~seed:7 () in
  Sim.install_crashes sim [ (0, 0.5) ];
  let rb : int Rbcast.t =
    Rbcast.create sim ~delay:(Delay.Constant 0.1) ~stagger:0.3 ()
  in
  Rbcast.broadcast rb ~src:0 99;
  ignore (Sim.run sim);
  (* p0 reached destinations 0 and 1 before dying (sends at 0.0 and 0.3);
     p1 must have relayed to everyone. *)
  for i = 1 to 4 do
    check_int "correct process delivered" 1 (List.length (Rbcast.delivered rb i))
  done

let test_rb_all_or_nothing_when_unreached () =
  (* If the origin crashes before any send, nobody delivers. *)
  let sim = mk ~n:5 ~t:1 () in
  Sim.install_crashes sim [ (0, 0.0) ];
  let rb : int Rbcast.t = Rbcast.create sim () in
  Sim.schedule sim ~delay:1.0 (fun () -> Rbcast.broadcast rb ~src:0 1);
  ignore (Sim.run sim);
  for i = 0 to 4 do
    check_int "nobody delivered" 0 (List.length (Rbcast.delivered rb i))
  done

let test_rb_validity_no_spurious () =
  let sim = mk ~n:5 () in
  let rb : int Rbcast.t = Rbcast.create sim () in
  Rbcast.broadcast rb ~src:2 5;
  ignore (Sim.run sim);
  for i = 0 to 4 do
    List.iter
      (fun (d : int Rbcast.delivery) -> check "only the sent message" true (d.body = 5 && d.origin = 2))
      (Rbcast.delivered rb i)
  done

let test_rb_agreement_same_set_everywhere () =
  (* All correct processes deliver the same multiset, across random delays
     and crashes. *)
  for seed = 1 to 10 do
    let sim = mk ~n:6 ~t:2 ~seed () in
    let rng = Rng.split_named (Sim.rng sim) "crash" in
    Sim.install_crashes sim
      (Crash.generate (Crash.Exactly { crashes = 2; window = (0.0, 3.0) }) ~n:6 ~t:2 rng);
    let rb : int Rbcast.t =
      Rbcast.create sim ~delay:(Delay.Uniform (0.1, 2.0)) ~stagger:0.2 ()
    in
    for k = 0 to 5 do
      Sim.schedule sim ~delay:(float_of_int k) (fun () -> Rbcast.broadcast rb ~src:k (100 + k))
    done;
    ignore (Sim.run sim);
    let correct = Pidset.to_list (Sim.correct_set sim) in
    let sets =
      List.map
        (fun i ->
          List.sort compare
            (List.map (fun (d : int Rbcast.delivery) -> (d.origin, d.body)) (Rbcast.delivered rb i)))
        correct
    in
    match sets with
    | [] -> Alcotest.fail "no correct process"
    | first :: rest ->
        List.iter (fun s -> check "same delivered multiset" true (s = first)) rest
  done

let test_rb_on_deliver_callback () =
  let sim = mk ~n:5 () in
  let rb : int Rbcast.t = Rbcast.create sim () in
  let count = ref 0 in
  Rbcast.on_deliver rb (fun _pid _d -> incr count);
  Rbcast.broadcast rb ~src:0 1;
  ignore (Sim.run sim);
  check_int "one callback per process" 5 !count

let test_rb_cond_signalled_on_rdelivery () =
  let sim = mk ~n:5 () in
  let rb : int Rbcast.t = Rbcast.create sim () in
  let decided = ref false in
  Rbcast.on_deliver rb (fun pid _ -> if pid = 3 then decided := true);
  let woke = ref false in
  Sim.spawn sim ~pid:3 (fun () ->
      Sim.Cond.await [ Rbcast.cond rb 3 ] (fun () -> !decided);
      woke := true);
  Sim.schedule sim ~delay:1.0 (fun () -> Rbcast.broadcast rb ~src:0 9);
  ignore (Sim.run sim);
  check "R-delivery woke the waiter" true !woke

let test_rb_handlers_registration_order () =
  let sim = mk ~n:5 () in
  let rb : int Rbcast.t = Rbcast.create sim () in
  let order = ref [] in
  Rbcast.on_deliver rb (fun pid _ -> if pid = 0 then order := 1 :: !order);
  Rbcast.on_deliver rb (fun pid _ -> if pid = 0 then order := 2 :: !order);
  Rbcast.broadcast rb ~src:0 1;
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "registration order" [ 1; 2 ] (List.rev !order)

let test_rb_delivery_order_can_differ () =
  (* Non-FIFO: two messages R-broadcast close together can be R-delivered in
     different orders at different processes, for some seed. *)
  let differs = ref false in
  for seed = 1 to 30 do
    if not !differs then begin
      let sim = mk ~n:5 ~seed () in
      let rb : int Rbcast.t = Rbcast.create sim ~delay:(Delay.Uniform (0.1, 5.0)) () in
      Rbcast.broadcast rb ~src:0 1;
      Rbcast.broadcast rb ~src:1 2;
      ignore (Sim.run sim);
      let order i = List.map (fun (d : int Rbcast.delivery) -> d.body) (Rbcast.delivered rb i) in
      for i = 0 to 4 do
        if order i <> order 0 then differs := true
      done
    end
  done;
  check "some seed shows divergent delivery order" true !differs

(* Fair-lossy links and the reliable transport over them *)

let test_lossy_drops_statistically () =
  let sim = mk ~seed:21 () in
  let link : int Lossy.Link.t = Lossy.Link.create sim ~loss:0.5 () in
  for i = 1 to 1000 do
    Lossy.Link.send link ~src:0 ~dst:1 i
  done;
  ignore (Sim.run sim);
  let d = Lossy.Link.delivered link in
  check "about half delivered" true (d > 400 && d < 600);
  check_int "sent counted" 1000 (Lossy.Link.sent link);
  check_int "drop + deliver = sent" 1000 (Lossy.Link.dropped link + d)

let test_lossy_zero_loss_delivers_all () =
  let sim = mk ~seed:22 () in
  let link : int Lossy.Link.t = Lossy.Link.create sim ~loss:0.0 () in
  for i = 1 to 50 do
    Lossy.Link.send link ~src:0 ~dst:1 i
  done;
  ignore (Sim.run sim);
  check_int "all delivered" 50 (Lossy.Link.delivered link)

let test_lossy_bad_loss_rejected () =
  let sim = mk ~seed:23 () in
  check "loss = 1 rejected" true
    (try
       ignore (Lossy.Link.create sim ~loss:1.0 () : int Lossy.Link.t);
       false
     with Invalid_argument _ -> true)

let test_transport_reliable_over_heavy_loss () =
  let sim = Sim.create ~horizon:500.0 ~n:5 ~t:2 ~seed:24 () in
  let tr : int Lossy.Transport.t = Lossy.Transport.create sim ~loss:0.6 () in
  for i = 1 to 30 do
    Lossy.Transport.send tr ~src:0 ~dst:1 i
  done;
  let all_in () = List.length (Lossy.Transport.inbox tr 1) >= 30 in
  let o = Sim.run ~stop_when:all_in sim in
  check "stopped on completion" true (o.reason = Sim.Stopped);
  let got = List.map snd (Lossy.Transport.inbox tr 1) in
  Alcotest.(check (list int)) "every message exactly once (60% loss)"
    (List.init 30 (fun i -> i + 1))
    (List.sort compare got);
  check "retransmissions happened" true (Lossy.Transport.link_sent tr > 60)

let test_transport_acks_clear_pending () =
  let sim = Sim.create ~horizon:500.0 ~n:5 ~t:2 ~seed:25 () in
  let tr : int Lossy.Transport.t = Lossy.Transport.create sim ~loss:0.3 () in
  Lossy.Transport.send tr ~src:0 ~dst:1 7;
  Lossy.Transport.send tr ~src:0 ~dst:2 8;
  ignore (Sim.run ~stop_when:(fun () -> Lossy.Transport.pending tr 0 = 0) sim);
  check_int "nothing pending" 0 (Lossy.Transport.pending tr 0)

let test_transport_sender_crash_stops_retransmission () =
  let sim = Sim.create ~horizon:100.0 ~n:5 ~t:2 ~seed:26 () in
  Sim.install_crashes sim [ (0, 5.0) ];
  let tr : int Lossy.Transport.t = Lossy.Transport.create sim ~loss:0.99 () in
  ignore tr;
  (* With 99% loss the first copies almost surely vanish; after the crash
     nobody retransmits, so the message may never arrive — and the run must
     still terminate cleanly at the horizon. *)
  Lossy.Transport.send tr ~src:0 ~dst:1 1;
  let o = Sim.run sim in
  check "run ends" true (o.reason = Sim.Horizon || o.reason = Sim.Quiescent)

let test_transport_no_duplicates_in_callbacks () =
  let sim = Sim.create ~horizon:500.0 ~n:5 ~t:2 ~seed:27 () in
  let tr : int Lossy.Transport.t = Lossy.Transport.create sim ~loss:0.5 () in
  let count = ref 0 in
  Lossy.Transport.on_deliver tr (fun ~src:_ ~dst:_ _ -> incr count);
  for i = 1 to 10 do
    Lossy.Transport.send tr ~src:2 ~dst:3 i
  done;
  ignore (Sim.run ~stop_when:(fun () -> !count >= 10 && Lossy.Transport.pending tr 2 = 0) sim);
  check_int "exactly one callback per message" 10 !count

(* Backoff policy *)

let test_backoff_interval_capped () =
  let rng = Rng.create 6 in
  let prev = ref 0.0 in
  for attempt = 0 to 20 do
    let v =
      Delay.backoff_interval ~base:1.0 ~factor:2.0 ~cap:8.0 ~jitter:0.0 ~rng ~attempt
    in
    check "within cap" true (v <= 8.0 +. 1e-9);
    check "monotone until cap" true (v >= !prev || v >= 8.0 -. 1e-9);
    prev := v
  done;
  for attempt = 0 to 10 do
    let v =
      Delay.backoff_interval ~base:1.0 ~factor:2.0 ~cap:8.0 ~jitter:0.3 ~rng ~attempt
    in
    check "positive under jitter" true (v > 0.0)
  done

let test_transport_backoff_metrics () =
  let sim = Sim.create ~horizon:2000.0 ~n:3 ~t:1 ~seed:26 () in
  let tr : int Lossy.Transport.t =
    Lossy.Transport.create sim ~loss:0.5 ~retransmit_every:0.5 ()
  in
  for i = 1 to 20 do
    Lossy.Transport.send tr ~src:0 ~dst:1 i
  done;
  ignore (Sim.run ~stop_when:(fun () -> Lossy.Transport.pending tr 0 = 0) sim);
  let m = Lossy.Transport.metrics tr in
  check_int "all delivered" 20 (List.length (Lossy.Transport.inbox tr 1));
  check "retransmits recorded" true (Metrics.counter m "net.retransmits" > 0);
  check "backoff resets recorded" true (Metrics.counter m "net.backoff_resets" > 0)

(* qcheck: a sender crashing mid-staggered-broadcast reaches exactly a
   prefix of the destination order — and the reliable broadcast's echo
   relay masks exactly this partiality (all correct or none). *)

let gen_partial_broadcast =
  QCheck.make
    ~print:(fun (seed, n, step10, ct10) ->
      Printf.sprintf "seed=%d n=%d step=%.1f crash_at=%.1f" seed n
        (float_of_int step10 /. 10.0)
        (float_of_int ct10 /. 10.0))
    QCheck.Gen.(
      quad (int_range 1 5000) (int_range 3 9) (int_range 1 10) (int_range 0 40))

let qcheck_staggered_prefix =
  QCheck.Test.make
    ~name:"crash mid-staggered broadcast reaches exactly a prefix" ~count:60
    gen_partial_broadcast
    (fun (seed, n, step10, ct10) ->
      let step = float_of_int step10 /. 10.0
      and ct = float_of_int ct10 /. 10.0 in
      let sim = Sim.create ~horizon:100.0 ~n ~t:1 ~seed () in
      Sim.install_crashes sim [ (0, ct) ];
      let net : int Net.t = Net.create sim ~delay:(Delay.Constant 0.05) () in
      Net.broadcast_staggered net ~src:0 ~step 99;
      ignore (Sim.run sim);
      (* Only the surviving destinations witness the prefix property —
         p0's own copy can be dropped by its crash. *)
      let live = List.init (n - 1) (fun i -> i + 1) in
      let got = List.map (fun i -> Net.inbox net i <> []) live in
      let rec is_prefix = function
        | true :: rest -> is_prefix rest
        | rest -> List.for_all not rest
      in
      is_prefix got)

let qcheck_rbcast_masks_partial =
  QCheck.Test.make
    ~name:"rbcast masks crash-interrupted partial broadcast" ~count:40
    gen_partial_broadcast
    (fun (seed, n, step10, ct10) ->
      let step = float_of_int step10 /. 10.0
      and ct = float_of_int ct10 /. 10.0 in
      let sim = Sim.create ~horizon:200.0 ~n ~t:1 ~seed () in
      Sim.install_crashes sim [ (0, ct) ];
      let rb : int Rbcast.t =
        Rbcast.create sim ~delay:(Delay.Constant 0.05) ~stagger:step ()
      in
      Rbcast.broadcast rb ~src:0 42;
      ignore (Sim.run sim);
      let correct = List.init (n - 1) (fun i -> i + 1) in
      let cnt =
        List.length (List.filter (fun i -> Rbcast.delivered rb i <> []) correct)
      in
      cnt = 0 || cnt = List.length correct)

let () =
  Alcotest.run "net"
    [
      ( "delay",
        [
          Alcotest.test_case "constant" `Quick test_delay_constant;
          Alcotest.test_case "uniform range" `Quick test_delay_uniform_range;
          Alcotest.test_case "exponential" `Quick test_delay_exponential_nonneg;
          Alcotest.test_case "fn adversary" `Quick test_delay_fn_adversary;
          Alcotest.test_case "clamped" `Quick test_delay_clamped;
        ] );
      ( "channels",
        [
          Alcotest.test_case "send delivers" `Quick test_send_delivers;
          Alcotest.test_case "no loss no dup" `Quick test_no_loss_no_dup;
          Alcotest.test_case "non-fifo" `Quick test_non_fifo_possible;
          Alcotest.test_case "dead sender" `Quick test_send_from_crashed_dropped;
          Alcotest.test_case "dead receiver" `Quick test_send_to_crashed_dropped;
          Alcotest.test_case "in-flight survives" `Quick test_in_flight_survives_sender_crash;
          Alcotest.test_case "send_at" `Quick test_send_at_adversarial;
          Alcotest.test_case "broadcast" `Quick test_broadcast_reaches_all;
          Alcotest.test_case "staggered partial" `Quick test_broadcast_staggered_partial_on_crash;
          Alcotest.test_case "filters" `Quick test_recv_filter_count_senders;
          Alcotest.test_case "on_deliver" `Quick test_on_deliver_callbacks;
          Alcotest.test_case "retain:false" `Quick test_retain_false_empty_inbox;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "cursors" `Quick test_cursor_recv_since;
          Alcotest.test_case "keyed index" `Quick test_keyed_index_matches_filters;
          Alcotest.test_case "keyed w/o retain" `Quick test_keyed_index_with_retain_false;
          Alcotest.test_case "handler order" `Quick test_handlers_run_in_registration_order;
          Alcotest.test_case "delivery signals cond" `Quick test_delivery_signals_cond;
        ] );
      ( "rbcast",
        [
          Alcotest.test_case "basic delivery" `Quick test_rb_basic_delivery;
          Alcotest.test_case "integrity" `Quick test_rb_integrity_no_duplicates;
          Alcotest.test_case "termination under crash" `Quick test_rb_termination_under_origin_crash;
          Alcotest.test_case "unreached = silent" `Quick test_rb_all_or_nothing_when_unreached;
          Alcotest.test_case "validity" `Quick test_rb_validity_no_spurious;
          Alcotest.test_case "uniform delivery" `Quick test_rb_agreement_same_set_everywhere;
          Alcotest.test_case "callbacks" `Quick test_rb_on_deliver_callback;
          Alcotest.test_case "cond on R-delivery" `Quick test_rb_cond_signalled_on_rdelivery;
          Alcotest.test_case "handler order" `Quick test_rb_handlers_registration_order;
          Alcotest.test_case "order can differ" `Quick test_rb_delivery_order_can_differ;
        ] );
      ( "lossy",
        [
          Alcotest.test_case "statistical drops" `Quick test_lossy_drops_statistically;
          Alcotest.test_case "zero loss" `Quick test_lossy_zero_loss_delivers_all;
          Alcotest.test_case "bad loss" `Quick test_lossy_bad_loss_rejected;
          Alcotest.test_case "reliable over 60% loss" `Quick test_transport_reliable_over_heavy_loss;
          Alcotest.test_case "acks clear pending" `Quick test_transport_acks_clear_pending;
          Alcotest.test_case "sender crash" `Quick test_transport_sender_crash_stops_retransmission;
          Alcotest.test_case "no duplicate callbacks" `Quick test_transport_no_duplicates_in_callbacks;
          Alcotest.test_case "backoff interval capped" `Quick test_backoff_interval_capped;
          Alcotest.test_case "backoff metrics" `Quick test_transport_backoff_metrics;
        ] );
      ( "partial-broadcast",
        List.map
          (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |]))
          [ qcheck_staggered_prefix; qcheck_rbcast_masks_partial ] );
    ]
