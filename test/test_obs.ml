(* Observability layer tests: the metrics registry (merge laws, histogram
   percentiles), trace spans (nesting per track), exporters (JSON
   round-trips, byte-stable determinism), and the trace-derived obs.*
   metrics surfaced by Protocol.run. *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_counter_gauge () =
  let m = Metrics.create () in
  check_int "absent counter" 0 (Metrics.counter m "c");
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  check_int "counter" 5 (Metrics.counter m "c");
  check "absent gauge" true (Metrics.gauge m "g" = None);
  Metrics.set_gauge m "g" 2.5;
  Metrics.set_gauge m "g" 1.0;
  check "gauge keeps last" true (Metrics.gauge m "g" = Some 1.0);
  Alcotest.(check (list string)) "names sorted" [ "c"; "g" ] (Metrics.names m)

let test_metrics_handles () =
  (* Int-keyed hot-path handles: a handle write is the same cell a
     by-name read observes, registration order never leaks into [keys],
     and [keys] = [names] (both sorted). *)
  let m = Metrics.create () in
  let hz = Metrics.counter_handle m "z.late" in
  let ha = Metrics.counter_handle m "a.early" in
  Metrics.bump hz;
  Metrics.bump ~by:9 hz;
  Metrics.bump ha;
  check_int "handle writes visible by name" 10 (Metrics.counter m "z.late");
  Metrics.incr m ~by:5 "a.early";
  check_int "by-name writes visible via same cell" 6 (Metrics.counter m "a.early");
  let hz' = Metrics.counter_handle m "z.late" in
  Metrics.bump hz';
  check_int "re-registration aliases, not shadows" 11 (Metrics.counter m "z.late");
  let h = Metrics.hist_handle m "lat" in
  Metrics.hist_record h 3.0;
  check_int "hist handle aliases registry" 1 (Metrics.hist_count (Metrics.hist_handle m "lat"));
  Alcotest.(check (list string)) "keys sorted" [ "a.early"; "lat"; "z.late" ] (Metrics.keys m);
  Alcotest.(check (list string)) "keys = names" (Metrics.names m) (Metrics.keys m)

let test_metrics_hist_basic () =
  let h = Metrics.hist_create ~bounds:[| 1.0; 2.0; 5.0 |] () in
  check_int "empty count" 0 (Metrics.hist_count h);
  check "empty min" true (Metrics.hist_min h = None);
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Metrics.hist_percentile h 0.5);
  List.iter (Metrics.hist_record h) [ 0.5; 1.5; 3.0; 7.0 ];
  check_int "count" 4 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 12.0 (Metrics.hist_sum h);
  check "min" true (Metrics.hist_min h = Some 0.5);
  check "max" true (Metrics.hist_max h = Some 7.0);
  (* percentiles are bucket upper-bound estimates clamped to the
     observed range; the top rank lands in the overflow bucket, whose
     estimate is the exact max *)
  Alcotest.(check (float 1e-9)) "p100 = max" 7.0 (Metrics.hist_percentile h 1.0);
  let p0 = Metrics.hist_percentile h 0.0 in
  let p50 = Metrics.hist_percentile h 0.5 and p90 = Metrics.hist_percentile h 0.9 in
  check "p0 within range" true (p0 >= 0.5 && p0 <= 7.0);
  check "p50 within range" true (p50 >= 0.5 && p50 <= 7.0);
  check "monotone in p" true (p0 <= p50 && p50 <= p90)

let test_metrics_hist_bad_bounds () =
  check "non-increasing bounds raise" true
    (try
       ignore (Metrics.hist_create ~bounds:[| 1.0; 1.0 |] ());
       false
     with Invalid_argument _ -> true)

let test_metrics_merge_mismatch () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "x";
  Metrics.set_gauge b "x" 1.0;
  check "kind mismatch raises" true
    (try
       ignore (Metrics.merge a b);
       false
     with Invalid_argument _ -> true);
  let c = Metrics.create () and d = Metrics.create () in
  Metrics.observe c ~bounds:[| 1.0; 2.0 |] "h" 0.5;
  Metrics.observe d ~bounds:[| 1.0; 3.0 |] "h" 0.5;
  check "bounds mismatch raises" true
    (try
       ignore (Metrics.merge c d);
       false
     with Invalid_argument _ -> true)

let test_metrics_merge_values () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a ~by:2 "c";
  Metrics.incr b ~by:3 "c";
  Metrics.set_gauge a "g" 1.0;
  Metrics.set_gauge b "g" 4.0;
  Metrics.observe a ~bounds:[| 1.0; 2.0 |] "h" 0.5;
  Metrics.observe b ~bounds:[| 1.0; 2.0 |] "h" 1.5;
  let m = Metrics.merge a b in
  check_int "counters add" 5 (Metrics.counter m "c");
  check "gauges max" true (Metrics.gauge m "g" = Some 4.0);
  (match Metrics.hist m "h" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
      check_int "hist count" 2 (Metrics.hist_count h);
      check "hist min" true (Metrics.hist_min h = Some 0.5);
      check "hist max" true (Metrics.hist_max h = Some 1.5));
  (* inputs unchanged *)
  check_int "a untouched" 2 (Metrics.counter a "c")

(* Merge must be associative and commutative so canonical-order folds in
   the campaign engine are interleaving-independent.  Samples are
   int-valued floats, so sums are exact and JSON renderings compare
   byte-for-byte. *)
let bounds = [| 1.0; 2.0; 5.0; 10.0 |]

let registry_of_ops ops =
  let m = Metrics.create () in
  List.iter
    (fun (kind, idx, v) ->
      let name = Printf.sprintf "%c%d" "cgh".[kind] idx in
      match kind with
      | 0 -> Metrics.incr m ~by:v name
      | 1 -> Metrics.set_gauge m name (float_of_int v)
      | _ -> Metrics.observe m ~bounds name (float_of_int v))
    ops;
  m

let json_str m = Json.to_string ~minify:true (Metrics.to_json m)

let ops_gen =
  QCheck.list_of_size (QCheck.Gen.int_range 0 12)
    (QCheck.triple (QCheck.int_range 0 2) (QCheck.int_range 0 2) (QCheck.int_range 0 20))

(* Monotone instruments only (no gauges): kind 0 = counter, 2 = hist. *)
let mono_ops_gen =
  QCheck.list_of_size (QCheck.Gen.int_range 0 12)
    (QCheck.triple
       (QCheck.map (fun b -> if b then 0 else 2) QCheck.bool)
       (QCheck.int_range 0 2) (QCheck.int_range 0 20))

let metrics_qcheck =
  [
    QCheck.Test.make ~count:300 ~name:"merge commutative"
      (QCheck.pair ops_gen ops_gen)
      (fun (o1, o2) ->
        let a = registry_of_ops o1 and b = registry_of_ops o2 in
        json_str (Metrics.merge a b) = json_str (Metrics.merge b a));
    QCheck.Test.make ~count:300 ~name:"merge associative"
      (QCheck.triple ops_gen ops_gen ops_gen)
      (fun (o1, o2, o3) ->
        let a = registry_of_ops o1 and b = registry_of_ops o2 and c = registry_of_ops o3 in
        json_str (Metrics.merge (Metrics.merge a b) c)
        = json_str (Metrics.merge a (Metrics.merge b c)));
    QCheck.Test.make ~count:300 ~name:"merge with empty is identity"
      ops_gen
      (fun ops ->
        let a = registry_of_ops ops in
        json_str (Metrics.merge a (Metrics.create ())) = json_str a
        && json_str (Metrics.merge (Metrics.create ()) a) = json_str a);
    (* The telemetry replay law: merge base (delta ~base cur) == cur when
       base is an earlier snapshot of cur.  Gauges are excluded on
       purpose — a gauge that moved {e down} is absorbed by max-merge, so
       the documented law only covers counters/histograms (and monotone
       gauges); the generator draws kinds {counter, hist} only. *)
    QCheck.Test.make ~count:300 ~name:"snapshot/delta replay law"
      (QCheck.pair mono_ops_gen mono_ops_gen)
      (fun (early, late) ->
        let base = Metrics.snapshot (registry_of_ops early) in
        let cur = registry_of_ops (early @ late) in
        json_str (Metrics.merge base (Metrics.delta ~base cur)) = json_str cur);
  ]

let test_metrics_snapshot_delta () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 "c";
  Metrics.observe m ~bounds "h" 2.0;
  let base = Metrics.snapshot m in
  Metrics.incr m ~by:4 "c";
  Metrics.observe m ~bounds "h" 7.0;
  Metrics.set_gauge m "g" 1.5;
  (* the snapshot is frozen: later writes must not leak into it *)
  check_int "snapshot frozen" 3 (Metrics.counter base "c");
  let d = Metrics.delta ~base m in
  check_int "counter delta" 4 (Metrics.counter d "c");
  check "gauge delta carries current" true (Metrics.gauge d "g" = Some 1.5);
  (match Metrics.hist d "h" with
  | None -> Alcotest.fail "hist delta missing"
  | Some h ->
      check_int "hist delta count" 1 (Metrics.hist_count h);
      check "hist delta keeps cumulative extrema" true
        (Metrics.hist_min h = Some 2.0 && Metrics.hist_max h = Some 7.0));
  check "replay reaches cur" true (json_str (Metrics.merge base d) = json_str m);
  (* an idle tick ships a merge-identity delta *)
  let idle = Metrics.delta ~base:(Metrics.snapshot m) m in
  check "idle delta is identity" true
    (json_str (Metrics.merge m idle) = json_str m)

(* ------------------------------------------------------------------ *)
(* Trace spans                                                         *)
(* ------------------------------------------------------------------ *)

let test_spans_basic () =
  let tr = Trace.create () in
  let r1 = Trace.Round { pid = 0; round = 1 } in
  let r2 = Trace.Round { pid = 0; round = 2 } in
  let w = Trace.Wheel_phase { pid = 1; wheel = "lower"; pos = 3 } in
  Trace.begin_span tr ~time:1.0 r1;
  Trace.begin_span tr ~time:1.5 w;
  Trace.end_span tr ~time:2.0 r1;
  Trace.begin_span tr ~time:2.0 r2;
  Trace.end_span tr ~time:3.0 r2;
  check "nesting ok" true (Trace.nesting_ok tr);
  let sp = Trace.spans tr in
  check_int "two complete" 2 (List.length sp);
  (match sp with
  | (s, t0, t1) :: _ ->
      check "first is r1" true (s = r1);
      Alcotest.(check (float 0.0)) "t0" 1.0 t0;
      Alcotest.(check (float 0.0)) "t1" 2.0 t1
  | [] -> Alcotest.fail "no spans");
  (match Trace.open_spans tr with
  | [ (s, t0) ] ->
      check "open is wheel" true (s = w);
      Alcotest.(check (float 0.0)) "open t0" 1.5 t0
  | l -> Alcotest.failf "expected 1 open span, got %d" (List.length l))

let test_spans_nesting_violation () =
  let tr = Trace.create () in
  let a = Trace.Round { pid = 0; round = 1 } in
  let b = Trace.Round { pid = 0; round = 2 } in
  (* same track (pid 0, Round lane): ending [a] while [b] is on top is a
     LIFO violation *)
  Trace.begin_span tr ~time:0.0 a;
  Trace.begin_span tr ~time:1.0 b;
  Trace.end_span tr ~time:2.0 a;
  check "violated" false (Trace.nesting_ok tr);
  (* distinct pids are distinct tracks: interleaving is fine *)
  let tr2 = Trace.create () in
  let p0 = Trace.Round { pid = 0; round = 1 } in
  let p1 = Trace.Round { pid = 1; round = 1 } in
  Trace.begin_span tr2 ~time:0.0 p0;
  Trace.begin_span tr2 ~time:0.5 p1;
  Trace.end_span tr2 ~time:1.0 p0;
  Trace.end_span tr2 ~time:1.5 p1;
  check "cross-track ok" true (Trace.nesting_ok tr2);
  check_int "both complete" 2 (List.length (Trace.spans tr2))

let test_span_tracks_distinct () =
  (* every lane of one pid gets its own track, and pids never collide *)
  let spans_of pid =
    [
      Trace.Round { pid; round = 1 };
      Trace.Wheel_phase { pid; wheel = "lower"; pos = 0 };
      Trace.Wheel_phase { pid; wheel = "upper"; pos = 0 };
      Trace.Query_epoch { pid; seq = 0 };
      Trace.Wakeup { pid };
      Trace.Span { pid = Some pid; cat = "x"; name = "y" };
    ]
  in
  let tracks = List.concat_map (fun pid -> List.map Trace.span_track (spans_of pid)) [ 0; 1; 7 ] in
  let sorted = List.sort_uniq compare tracks in
  check_int "all distinct" (List.length tracks) (List.length sorted)

(* ------------------------------------------------------------------ *)
(* Protocol-level traces and obs.* metrics                             *)
(* ------------------------------------------------------------------ *)

let params ?(trace = "default") ?(seed = 5) () =
  {
    Protocol.default with
    Protocol.n = 6;
    t = 2;
    z = 2;
    k = 2;
    seed;
    crashes = Crash.No_crashes;
    trace;
  }

let run_kset ?trace ?seed () =
  Protocol.run (Option.get (Protocol.find "kset")) (params ?trace ?seed ())

let test_off_records_nothing () =
  let r = run_kset ~trace:"off" () in
  let tr = Sim.trace r.Protocol.rp_sim in
  check "verdict ok" true (Check.verdict_ok r.Protocol.rp_verdict);
  check_int "no entries" 0 (Trace.length tr);
  check "counters still work" true (Trace.counter tr "kset.sent" > 0);
  check "no obs metrics" true
    (List.for_all
       (fun (name, _) -> not (String.starts_with ~prefix:"obs." name))
       r.Protocol.rp_metrics)

let test_default_spans_and_obs_metrics () =
  let r = run_kset () in
  let tr = Sim.trace r.Protocol.rp_sim in
  check "verdict ok" true (Check.verdict_ok r.Protocol.rp_verdict);
  check "has entries" true (Trace.length tr > 0);
  check "nesting ok" true (Trace.nesting_ok tr);
  check "has round spans" true
    (List.exists (fun (s, _, _) -> Trace.span_cat s = "round") (Trace.spans tr));
  (* default level drops per-message traffic *)
  check "no sends at default" true
    (List.for_all
       (fun { Trace.entry; _ } ->
         match entry with Trace.Send _ | Trace.Deliver _ -> false | _ -> true)
       (Trace.entries tr));
  let get name = List.assoc_opt name r.Protocol.rp_metrics in
  (match get "obs.rounds_to_decide" with
  | Some v -> check "rounds_to_decide >= 1" true (v >= 1.0)
  | None -> Alcotest.fail "obs.rounds_to_decide missing");
  (match get "obs.msgs_per_decision" with
  | Some v -> check "msgs_per_decision > 0" true (v > 0.0)
  | None -> Alcotest.fail "obs.msgs_per_decision missing");
  check "omega stab time present" true (get "obs.omega_stab_time" <> None)

let test_full_has_traffic_and_wakeups () =
  let r = run_kset ~trace:"full" () in
  let tr = Sim.trace r.Protocol.rp_sim in
  check "has send" true
    (List.exists
       (fun { Trace.entry; _ } -> match entry with Trace.Send _ -> true | _ -> false)
       (Trace.entries tr));
  check "has deliver" true
    (List.exists
       (fun { Trace.entry; _ } -> match entry with Trace.Deliver _ -> true | _ -> false)
       (Trace.entries tr));
  check "has wakeup spans" true
    (List.exists (fun (s, _, _) -> Trace.span_cat s = "sched") (Trace.spans tr));
  check "nesting ok at full" true (Trace.nesting_ok tr)

let test_wheels_spans () =
  let pk = Option.get (Protocol.find "wheels") in
  let r = Protocol.run pk { (params ()) with Protocol.n = 8; t = 3; x = 2; y = 1 } in
  let tr = Sim.trace r.Protocol.rp_sim in
  check "nesting ok" true (Trace.nesting_ok tr);
  let cats = List.map (fun (s, _, _) -> Trace.span_cat s) (Trace.spans tr) in
  check "lower wheel spans" true (List.mem "wheel.lower" cats);
  check "upper wheel spans" true (List.mem "wheel.upper" cats);
  check "query epochs" true (List.mem "query" cats)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_jsonl_roundtrip () =
  let r = run_kset () in
  let tr = Sim.trace r.Protocol.rp_sim in
  let lines = Export.jsonl_lines tr in
  check "nonempty" true (List.length lines > 1);
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "line %d unparseable: %s" i e)
    lines;
  (* format v2: the header carries the level and stamp only; the totals
     moved to the trailing "end" footer so the live stream can emit the
     identical format before the run knows how long it will be *)
  (match Json.of_string (List.hd lines) with
  | Ok j ->
      check "meta type" true (Json.member "type" j = Some (Json.String "meta"));
      check "meta version 2" true (Json.member "version" j = Some (Json.Int 2));
      check "meta carries no totals" true (Json.member "entries" j = None)
  | Error e -> Alcotest.failf "meta unparseable: %s" e);
  (match Json.of_string (List.nth lines (List.length lines - 1)) with
  | Ok j ->
      check "footer type" true (Json.member "type" j = Some (Json.String "end"));
      check "footer entries" true
        (Json.member "entries" j = Some (Json.Int (Trace.length tr)));
      check "footer counters" true
        (Json.member "counters" j
        = Some (Json.Int (List.length (Trace.counters tr))))
  | Error e -> Alcotest.failf "footer unparseable: %s" e);
  check "to_jsonl has trailing newline" true
    (let s = Export.to_jsonl tr in
     String.length s > 0 && s.[String.length s - 1] = '\n')

let test_trace_cursor_tail () =
  let tr = Trace.create () in
  let cur = Trace.cursor () in
  check_int "fresh cursor at 0" 0 (Trace.cursor_pos cur);
  check_int "nothing pending" 0 (Trace.pending tr cur);
  check "empty tail" true (Trace.tail tr cur = []);
  Trace.record tr ~time:1.0 (Trace.Crash 0);
  Trace.record tr ~time:2.0 (Trace.Crash 1);
  check_int "two pending" 2 (Trace.pending tr cur);
  (match Trace.tail tr cur with
  | [ a; b ] ->
      check "recording order" true
        (a.Trace.entry = Trace.Crash 0 && b.Trace.entry = Trace.Crash 1)
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  check_int "tail consumed" 0 (Trace.pending tr cur);
  check_int "pos advanced" 2 (Trace.cursor_pos cur);
  Trace.record tr ~time:3.0 (Trace.Crash 2);
  check_int "one new" 1 (Trace.pending tr cur);
  (match Trace.tail tr cur with
  | [ c ] -> check "only the new entry" true (c.Trace.entry = Trace.Crash 2)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
  (* an explicitly positioned cursor replays from there *)
  let mid = Trace.cursor ~from:1 () in
  check_int "from=1 sees the rest" 2 (Trace.pending tr mid)

let first_line s = match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let test_stream_error_paths () =
  let tr = Trace.create () in
  let stream = Export.Stream.create tr in
  (* nothing recorded yet: the header waits for the first non-empty
     frame, so an early flush emits no bytes at all *)
  Alcotest.(check string) "untouched flush is empty" "" (Export.Stream.flush stream);
  let buf = Buffer.create 256 in
  Trace.record tr ~time:0.5 (Trace.Crash 1);
  let frame = Export.Stream.flush stream in
  (match Json.of_string (first_line frame) with
  | Ok j ->
      check "header rides first non-empty frame" true
        (Json.member "type" j = Some (Json.String "meta"))
  | Error e -> Alcotest.failf "first streamed line unparseable: %s" e);
  Buffer.add_string buf frame;
  (* a flush with nothing new (header already out) is empty again *)
  Alcotest.(check string) "idle flush is empty" "" (Export.Stream.flush stream);
  Trace.incr tr "c";
  Buffer.add_string buf (Export.Stream.close stream);
  Alcotest.(check string) "frames concatenate to post-hoc export"
    (Export.to_jsonl tr) (Buffer.contents buf);
  (* the stream is dead after close: both operations must refuse, the
     disconnect-mid-stream contract the daemon relies on *)
  check "flush after close raises" true
    (try ignore (Export.Stream.flush stream); false
     with Invalid_argument _ -> true);
  check "second close raises" true
    (try ignore (Export.Stream.close stream); false
     with Invalid_argument _ -> true)

(* Whatever interleaving of recording and flushing happens — including
   flushes that catch the trace mid-burst or see nothing new — the
   concatenated frames must equal the post-hoc export byte-for-byte.
   Negative ops flush; the rest record entries or bump counters. *)
let stream_ops_gen =
  QCheck.list_of_size (QCheck.Gen.int_range 0 40) (QCheck.int_range (-3) 20)

let stream_qcheck =
  QCheck.Test.make ~count:200 ~name:"streamed jsonl = post-hoc export"
    stream_ops_gen (fun ops ->
      let tr = Trace.create () in
      let stream = Export.Stream.create tr in
      let buf = Buffer.create 256 in
      List.iteri
        (fun i v ->
          if v < 0 then Buffer.add_string buf (Export.Stream.flush stream)
          else
            let time = float_of_int i in
            match v mod 4 with
            | 0 ->
                Trace.record tr ~time
                  (Trace.Note { pid = Some (v mod 3); text = "n" })
            | 1 ->
                Trace.record tr ~time
                  (Trace.Decide { pid = v mod 3; value = v; round = 1 + (v mod 5) })
            | 2 -> Trace.record tr ~time (Trace.Crash (v mod 3))
            | _ -> Trace.incr tr (Printf.sprintf "c%d" (v mod 3)))
        ops;
      Buffer.add_string buf (Export.Stream.close stream);
      Buffer.contents buf = Export.to_jsonl tr)

let test_chrome_roundtrip () =
  let r = run_kset () in
  let tr = Sim.trace r.Protocol.rp_sim in
  match Json.of_string (Export.to_chrome tr) with
  | Error e -> Alcotest.failf "chrome unparseable: %s" e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          let count ph =
            List.length
              (List.filter (fun e -> Json.member "ph" e = Some (Json.String ph)) evs)
          in
          check "has complete spans" true (count "E" >= 1);
          check "B >= E" true (count "B" >= count "E");
          check_int "spans match trace" (List.length (Trace.spans tr)) (count "E");
          check "has counter samples" true (count "C" >= 1)
      | _ -> Alcotest.fail "no traceEvents array")

let test_exports_deterministic () =
  (* same (protocol, seed, level) twice -> byte-identical exports *)
  List.iter
    (fun level ->
      let t1 = Sim.trace (run_kset ~trace:level ()).Protocol.rp_sim in
      let t2 = Sim.trace (run_kset ~trace:level ()).Protocol.rp_sim in
      Alcotest.(check string)
        (Printf.sprintf "jsonl byte-identical (%s)" level)
        (Export.to_jsonl t1) (Export.to_jsonl t2);
      Alcotest.(check string)
        (Printf.sprintf "chrome byte-identical (%s)" level)
        (Export.to_chrome t1) (Export.to_chrome t2))
    [ "default"; "full" ]

let test_level_does_not_perturb () =
  (* the no-perturbation invariant: the execution is identical at every
     trace level — decisions, rounds and message counts all agree *)
  let runs = List.map (fun level -> run_kset ~trace:level ()) [ "off"; "default"; "full" ] in
  let key r =
    let tr = Sim.trace r.Protocol.rp_sim in
    ( List.assoc_opt "rounds" r.Protocol.rp_metrics,
      List.assoc_opt "msgs" r.Protocol.rp_metrics,
      Trace.counter tr "kset.sent" )
  in
  match runs with
  | base :: rest ->
      List.iter (fun r -> check "identical execution" true (key r = key base)) rest
  | [] -> ()

let () =
  let qc = List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |])) metrics_qcheck in
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge" `Quick test_metrics_counter_gauge;
          Alcotest.test_case "handles + sorted keys" `Quick test_metrics_handles;
          Alcotest.test_case "histogram basics" `Quick test_metrics_hist_basic;
          Alcotest.test_case "bad bounds" `Quick test_metrics_hist_bad_bounds;
          Alcotest.test_case "merge mismatch" `Quick test_metrics_merge_mismatch;
          Alcotest.test_case "merge values" `Quick test_metrics_merge_values;
          Alcotest.test_case "snapshot/delta" `Quick test_metrics_snapshot_delta;
        ] );
      ("metrics-properties", qc);
      ( "spans",
        [
          Alcotest.test_case "begin/end" `Quick test_spans_basic;
          Alcotest.test_case "nesting violation" `Quick test_spans_nesting_violation;
          Alcotest.test_case "tracks distinct" `Quick test_span_tracks_distinct;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "off records nothing" `Quick test_off_records_nothing;
          Alcotest.test_case "default spans + obs metrics" `Quick test_default_spans_and_obs_metrics;
          Alcotest.test_case "full traffic + wakeups" `Quick test_full_has_traffic_and_wakeups;
          Alcotest.test_case "wheels spans" `Quick test_wheels_spans;
          Alcotest.test_case "level does not perturb" `Quick test_level_does_not_perturb;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "cursor tail" `Quick test_trace_cursor_tail;
          Alcotest.test_case "stream error paths" `Quick test_stream_error_paths;
          Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "byte-identical" `Quick test_exports_deterministic;
        ]
        @ [
            QCheck_alcotest.to_alcotest
              ~rand:(Random.State.make [| 42 |])
              stream_qcheck;
          ] );
    ]
