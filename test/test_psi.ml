(* Tests for the Appendix-A transformation Ψ_y → Ω_{t+1-y} (Figure 8):
   chain structure, nestedness (Ψ-compatibility), Ω_z certification across
   y / crash sweeps, behaviour of the fallback, comparison with the
   two-wheels route, and composition with k-set agreement. *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gst = 30.0

let setup ?(n = 7) ?(t = 3) ?(horizon = 200.0) ?(crashes = 0) ~seed () =
  let sim = Sim.create ~horizon ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes; window = (0.0, 15.0) }) ~n ~t rng);
  sim

let test_chain_structure () =
  let sim = setup ~seed:1 () in
  let querier, _ = Oracle.psi_y sim ~y:2 ~behavior:(Behavior.calm ~gst) () in
  let p = Psi_to_omega.create sim ~querier ~y:2 in
  check_int "z = t+1-y" 2 (Psi_to_omega.z p);
  let chain = Psi_to_omega.chain p in
  check_int "length n-z+1" (Bounds.psi_chain_length ~n:7 ~z:2) (List.length chain);
  (* Nested, sizes z, z+1, ..., n. *)
  let rec check_nested prev = function
    | [] -> ()
    | s :: rest ->
        (match prev with
        | Some p ->
            check "nested" true (Pidset.subset p s);
            check_int "grows by one" (Pidset.cardinal p + 1) (Pidset.cardinal s)
        | None -> check_int "first has size z" 2 (Pidset.cardinal s));
        check_nested (Some s) rest
  in
  check_nested None chain;
  (match List.rev chain with
  | last :: _ -> check "last is Pi" true (Pidset.equal last (Pidset.full ~n:7))
  | [] -> Alcotest.fail "empty chain")

let test_psi_compatible_queries () =
  (* Reading trusted repeatedly must never trip Ψ's containment check. *)
  let sim = setup ~crashes:2 ~seed:2 () in
  let querier, _ = Oracle.psi_y sim ~y:2 ~behavior:(Behavior.stormy ~gst) () in
  let p = Psi_to_omega.create sim ~querier ~y:2 in
  let omega = Psi_to_omega.omega p in
  Sim.ticker sim ~every:1.0;
  for i = 0 to 6 do
    Sim.spawn sim ~pid:i (fun () ->
        while true do
          ignore (omega.Iface.trusted i);
          Sim.sleep 1.0
        done)
  done;
  ignore (Sim.run sim);
  check "no containment violation" true true

let run_psi ?(n = 7) ?(t = 3) ?(horizon = 200.0) ~y ~crashes ~seed () =
  let sim = setup ~n ~t ~horizon ~crashes ~seed () in
  let querier, _ = Oracle.psi_y sim ~y ~behavior:(Behavior.stormy ~gst) () in
  let p = Psi_to_omega.create sim ~querier ~y in
  let omega = Psi_to_omega.omega p in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
  Sim.ticker sim ~every:1.0;
  ignore (Sim.run sim);
  (sim, p, mon)

let test_certified_omega_sweep () =
  List.iter
    (fun (y, crashes, seed) ->
      let sim, p, mon = run_psi ~y ~crashes ~seed () in
      let v = Check.omega_z sim ~z:(Psi_to_omega.z p) ~deadline:140.0 mon in
      if not (Check.verdict_ok v) then
        Alcotest.failf "y=%d crashes=%d: %s" y crashes (String.concat "; " v.notes))
    [ (0, 3, 1); (1, 2, 2); (2, 3, 3); (3, 1, 4); (3, 3, 5); (2, 0, 6) ]

let test_prefix_crash_selects_added_process () =
  (* Crash exactly the first z processes (Y[1]): the output must become the
     singleton of the process added at the first live link — the smallest
     correct one. *)
  let n = 7 and t = 3 and y = 2 in
  let sim = Sim.create ~horizon:200.0 ~n ~t ~seed:7 () in
  Sim.install_crashes sim [ (0, 2.0); (1, 3.0) ];
  (* z = 2, Y[1] = {p0, p1} all dead; Y[2] adds p2 (correct). *)
  let querier, _ = Oracle.psi_y sim ~y ~behavior:(Behavior.calm ~gst) () in
  let p = Psi_to_omega.create sim ~querier ~y in
  let omega = Psi_to_omega.omega p in
  Sim.ticker sim ~every:1.0;
  ignore (Sim.run ~stop_when:(fun () -> Sim.now sim > gst +. 5.0) sim);
  check "singleton of first live addition" true
    (Pidset.equal (omega.Iface.trusted 2) (Pidset.singleton 2))

let test_no_crash_outputs_first_link () =
  let _sim, p, _ = run_psi ~y:2 ~crashes:0 ~seed:8 () in
  let omega = Psi_to_omega.omega p in
  check "Y[1] output" true
    (Pidset.equal (omega.Iface.trusted 0) (List.hd (Psi_to_omega.chain p)))

let test_cheaper_than_wheels () =
  (* Same job (◇-class → Ω_2 with y=2, t=3): the psi route sends zero
     messages, the wheels route sends thousands. *)
  let n = 7 and t = 3 and y = 2 in
  let sim = setup ~n ~t ~horizon:250.0 ~crashes:1 ~seed:9 () in
  let behavior = Behavior.stormy ~gst in
  let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
  let w = Reduce.omega_from_phi sim ~querier ~y () in
  ignore (Sim.run sim);
  check "wheels cost thousands of messages" true (Wheels.total_messages w > 1000);
  (* psi sends none: there is no network to count — structural fact, but
     assert the interface exists without a sim network. *)
  let sim2 = setup ~n ~t ~horizon:250.0 ~crashes:1 ~seed:9 () in
  let querier2, _ = Oracle.psi_y sim2 ~y ~behavior () in
  let p = Psi_to_omega.create sim2 ~querier:querier2 ~y in
  ignore p;
  check "psi has no message counter at all" true true

let test_composed_with_kset () =
  let n = 7 and t = 3 and y = 2 in
  let sim = setup ~n ~t ~horizon:2000.0 ~crashes:2 ~seed:10 () in
  let querier, _ = Oracle.psi_y sim ~y ~behavior:(Behavior.stormy ~gst) () in
  let p = Reduce.omega_from_psi sim ~querier ~y in
  let proposals = Array.init n (fun i -> 10 * i) in
  let h = Reduce.solve_kset sim ~omega:(Psi_to_omega.omega p) ~proposals () in
  ignore (Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim);
  let v =
    Check.k_set_agreement sim ~k:(Psi_to_omega.z p) ~proposals
      ~decisions:(Kset.decisions h)
  in
  if not (Check.verdict_ok v) then Alcotest.failf "psi+kset: %s" (String.concat "; " v.notes)

let test_wheels_need_unrestricted_queries () =
  (* Why Figure 8 exists: once the upper ring crosses from one Y to the
     next (pre-stabilization churn guarantees it here — the ring has only
     C(2,1) = 2 L-steps per Y, and stormy suspicions force more l_moves
     than that), the wheels query pairwise-incomparable sets, which a Ψ
     oracle rejects. *)
  let sim = Sim.create ~horizon:250.0 ~n:6 ~t:2 ~seed:1 () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes = 2; window = (0.0, 20.0) }) ~n:6 ~t:2 rng);
  let behavior = Behavior.stormy ~gst:40.0 in
  let suspector, _ = Oracle.es_x sim ~x:2 ~behavior () in
  let querier, _ = Oracle.psi_y sim ~y:1 ~behavior () in
  let _w = Wheels.install sim ~suspector ~querier ~x:2 ~y:1 () in
  let raised = ref false in
  (try ignore (Sim.run sim) with Oracle.Psi_containment_violation _ -> raised := true);
  check "containment violation raised" true !raised

let test_bad_y_rejected () =
  let sim = setup ~seed:11 () in
  let querier, _ = Oracle.psi_y sim ~y:1 () in
  check "y > t rejected" true
    (try
       ignore (Psi_to_omega.create sim ~querier ~y:4);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "psi"
    [
      ( "structure",
        [
          Alcotest.test_case "chain" `Quick test_chain_structure;
          Alcotest.test_case "psi-compatible" `Quick test_psi_compatible_queries;
          Alcotest.test_case "wheels reject psi" `Quick test_wheels_need_unrestricted_queries;
          Alcotest.test_case "bad y" `Quick test_bad_y_rejected;
        ] );
      ( "omega",
        [
          Alcotest.test_case "certified sweep" `Quick test_certified_omega_sweep;
          Alcotest.test_case "prefix crash" `Quick test_prefix_crash_selects_added_process;
          Alcotest.test_case "no crash first link" `Quick test_no_crash_outputs_first_link;
        ] );
      ( "economy",
        [
          Alcotest.test_case "cheaper than wheels" `Quick test_cheaper_than_wheels;
          Alcotest.test_case "composed with kset" `Quick test_composed_with_kset;
        ] );
    ]
