(* Tests for the real-runtime backend (Setagree_rt): frame codec under
   adversarial packetization (split, coalesced, duplicated, dirty
   datagrams), accrual-detector monotonicity, and the sim-vs-rt
   differential — every registered protocol, run on the simulator and on
   real domains over the in-process channel transport with identical
   input vectors, must uphold the same agreement contract. *)

open Setagree_util
open Setagree_core
module Check = Setagree_fd.Check
module Frame = Setagree_rt.Frame
module Accrual = Setagree_rt.Accrual
module Rt_run = Setagree_rt.Run

let check = Alcotest.(check bool)

(* --- frame generators --- *)

let gen_kind =
  QCheck.Gen.(
    frequency
      [
        (1, return Frame.Heartbeat);
        ( 3,
          let* tag =
            map (fun l -> "tag." ^ String.concat "" (List.map (String.make 1) l))
              (list_size (int_range 0 12) (char_range 'a' 'z'))
          in
          let* body = map Bytes.of_string (string_size (int_range 0 200)) in
          return (Frame.Payload { tag; body }) );
      ])

let gen_frame =
  QCheck.Gen.(
    let* src = int_range 0 9 in
    let* dst = int_range 0 9 in
    let* seq = int_range 0 100_000 in
    let* kind = gen_kind in
    return { Frame.src; dst; seq; kind })

let pp_frame (f : Frame.t) =
  Printf.sprintf "{src=%d;dst=%d;seq=%d;%s}" f.Frame.src f.Frame.dst f.Frame.seq
    (match f.Frame.kind with
    | Frame.Heartbeat -> "hb"
    | Frame.Payload { tag; body } ->
        Printf.sprintf "payload %s (%dB)" tag (Bytes.length body))

let arb_frame = QCheck.make ~print:pp_frame gen_frame
let arb_frames = QCheck.make ~print:(fun l -> String.concat " " (List.map pp_frame l))
    QCheck.Gen.(list_size (int_range 1 10) gen_frame)

(* --- framing round-trips --- *)

let qcheck_packet_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Frame: decode_packet (encode f) = [f]"
    arb_frame (fun f ->
      let b = Frame.encode f in
      Frame.decode_packet b ~len:(Bytes.length b) = [ f ])

let concat_encodings frames =
  let bufs = List.map Frame.encode frames in
  let total = List.fold_left (fun acc b -> acc + Bytes.length b) 0 bufs in
  let out = Bytes.create total in
  let _ =
    List.fold_left
      (fun off b ->
        Bytes.blit b 0 out off (Bytes.length b);
        off + Bytes.length b)
      0 bufs
  in
  out

let qcheck_coalesced =
  QCheck.Test.make ~count:300 ~name:"Frame: coalesced datagram decodes in order"
    arb_frames (fun frames ->
      let b = concat_encodings frames in
      Frame.decode_packet b ~len:(Bytes.length b) = frames)

(* Feed the byte stream to the decoder in arbitrary chunk sizes: every
   frame must come out exactly once, in order, regardless of splits. *)
let qcheck_split_stream =
  QCheck.Test.make ~count:300 ~name:"Frame: split/coalesced stream reassembles"
    QCheck.(pair arb_frames (QCheck.make QCheck.Gen.(int_range 1 7)))
    (fun (frames, step) ->
      let b = concat_encodings frames in
      let dec = Frame.Decoder.create () in
      let out = ref [] in
      let pos = ref 0 in
      while !pos < Bytes.length b do
        let len = min step (Bytes.length b - !pos) in
        out := !out @ Frame.Decoder.feed dec ~off:!pos ~len b;
        pos := !pos + len
      done;
      !out = frames && Frame.Decoder.pending dec = 0)

let qcheck_duplicated =
  QCheck.Test.make ~count:200 ~name:"Frame: duplicated datagram decodes twice"
    arb_frame (fun f ->
      let b = Frame.encode f in
      let dec = Frame.Decoder.create () in
      let first = Frame.Decoder.feed dec b in
      let second = Frame.Decoder.feed dec b in
      (* The codec surfaces both copies; suppression by (src, seq) is the
         transport's job, tested through the differential below. *)
      first = [ f ] && second = [ f ])

let test_resync () =
  let f = { Frame.src = 1; dst = 2; seq = 7; kind = Frame.Heartbeat } in
  let b = Frame.encode f in
  let dirty = Bytes.cat (Bytes.make 5 'x') b in
  check "garbage skipped, frame recovered" true
    (Frame.decode_packet dirty ~len:(Bytes.length dirty) = [ f ]);
  let dec = Frame.Decoder.create () in
  let got = Frame.Decoder.feed dec dirty in
  check "decoder resyncs" true (got = [ f ]);
  check "skipped bytes counted" true (Frame.Decoder.skipped dec = 5)

(* --- accrual monotonicity --- *)

let warm_accrual gaps =
  let acc = Accrual.create ~rng:(Rng.create 7) ~self:0 ~n:3 () in
  let now = ref 0.0 in
  List.iter
    (fun g ->
      now := !now +. g;
      Accrual.heartbeat acc 1 ~now:!now)
    gaps;
  (acc, !now)

let qcheck_phi_monotone =
  QCheck.Test.make ~count:200
    ~name:"Accrual: suspicion nondecreasing during silence, reset on heartbeat"
    QCheck.(
      make
        QCheck.Gen.(
          list_size (int_range 6 40)
            (map (fun k -> 0.01 +. (float_of_int k /. 100.0)) (int_range 0 50))))
    (fun gaps ->
      let acc, t_last = warm_accrual gaps in
      (* probe at increasing silences: phi must never decrease *)
      let probes = List.init 20 (fun i -> t_last +. (0.05 *. float_of_int (i + 1))) in
      let phis = List.map (fun tm -> Accrual.phi acc 1 ~now:tm) probes in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | _ -> true
      in
      (* a long-enough silence is suspected; the next heartbeat resets *)
      let deep = t_last +. 100.0 in
      let was_suspected = Accrual.suspects acc 1 ~now:deep in
      Accrual.heartbeat acc 1 ~now:deep;
      let reset = not (Accrual.suspects acc 1 ~now:(deep +. 0.001)) in
      monotone phis && was_suspected && reset)

let test_accrual_surfaces () =
  let acc, t_last = warm_accrual (List.init 10 (fun _ -> 0.1)) in
  (* peer 2 never spoke: the bootstrap timeout keeps it suspected once
     expired, so trusted_z never proposes it after warmup *)
  let deep = t_last +. 50.0 in
  check "silent peer suspected" true (Accrual.suspects acc 2 ~now:deep);
  check "trusted excludes suspected" true
    (Pidset.equal (Accrual.trusted acc ~z:1 ~now:deep) (Pidset.add 0 Pidset.empty));
  (* query surface: small regions are trivially alive-or-dead-agnostic,
     the meaningful window (t-y < |X| <= t) consults suspicion *)
  let x12 = Pidset.add 1 (Pidset.add 2 Pidset.empty) in
  check "triviality: |X| <= t-y always true" true
    (Accrual.query acc ~t_bound:2 ~y:0 x12 ~now:(t_last +. 100.0));
  check "dead region acknowledged" true
    (Accrual.query acc ~t_bound:2 ~y:1 x12 ~now:(t_last +. 100.0));
  Accrual.heartbeat acc 1 ~now:(t_last +. 100.0);
  check "live member denies the region" false
    (Accrual.query acc ~t_bound:2 ~y:1 x12 ~now:(t_last +. 100.001))

(* --- sim vs rt differential --- *)

let rt_cfg =
  {
    Rt_run.default_cfg with
    Rt_run.transport = `Chan;
    hb_period_s = 0.01;
    horizon_s = 1.5;
    (* No crashes in the differential, so the FD deadline is just the
       slack; linger longer than that so every decider's history extends
       past the deadline with margin. *)
    linger_s = 0.8;
    detect_slack_s = 0.5;
    (* The default phi threshold (2.0) suspects on any gap rarer than
       ~1e-2 — on a loaded single-core box, domain scheduling stalls
       cross that constantly and a correct peer's trusted set blips
       after the deadline.  With no crashes in this differential a
       higher bar only suppresses those false positives; it cannot hide
       a real detection failure. *)
    accrual_threshold = 6.0;
  }

let differential name =
  let pk =
    match Protocol.find name with
    | Some pk -> pk
    | None -> Alcotest.failf "protocol %s not registered" name
  in
  let p =
    {
      Protocol.default with
      Protocol.n = 4;
      t = 1;
      seed = 5;
      z = 1;
      k = 1;
      (* wheels admissibility at t=1 needs x + y <= t + 1 *)
      x = 1;
      y = 1;
      (* perfect oracle behavior from the start: with no crashes both
         substrates then converge on the same leader (pid 0) and the
         pooled decisions must agree, not just each run internally *)
      gst = 0.0;
      crashes = Setagree_dsys.Crash.No_crashes;
      backend = "rt-chan";
    }
  in
  (* same input vector on both substrates *)
  let proposals = Protocol.proposals_of p in
  let sim_report = Protocol.run pk { p with Protocol.backend = "sim" } in
  check (name ^ ": sim verdict") true (Check.verdict_ok sim_report.Protocol.rp_verdict);
  let rt = Rt_run.run_protocol pk p ~cfg:rt_cfg () in
  check (name ^ ": rt safety") true rt.Rt_run.o_safety.Check.ok;
  check (name ^ ": rt fd history") true rt.Rt_run.o_fd.Check.ok;
  (* deciding protocols: both decision sets obey the same contract *)
  let sim_decisions =
    Setagree_dsys.Trace.decisions (Setagree_dsys.Sim.trace sim_report.Protocol.rp_sim)
  in
  match Rt_run.agreement_k p name with
  | None -> ()
  | Some k ->
      check (name ^ ": rt decided") true (rt.Rt_run.o_decisions <> []);
      check (name ^ ": sim decided") true (sim_decisions <> []);
      let notes =
        Protocol.kset_safety ~k ~proposals
          (sim_decisions @ rt.Rt_run.o_decisions |> List.sort_uniq compare)
        |> List.filter (fun note ->
               (* pooling both substrates legitimately repeats pids; only
                  agreement/validity notes count across substrates *)
               not (String.length note >= 6 && String.sub note 0 6 = "double"))
      in
      if notes <> [] then
        Alcotest.failf "%s: cross-substrate safety: %s" name
          (String.concat "; " notes)

let differential_tests =
  List.map
    (fun name -> Alcotest.test_case ("sim-vs-rt " ^ name) `Slow (fun () -> differential name))
    (Protocol.names ())

let () =
  let qt = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |]) in
  Alcotest.run "rt"
    [
      ( "frame",
        List.map qt
          [ qcheck_packet_roundtrip; qcheck_coalesced; qcheck_split_stream; qcheck_duplicated ]
        @ [ Alcotest.test_case "resync after garbage" `Quick test_resync ] );
      ( "accrual",
        List.map qt [ qcheck_phi_monotone ]
        @ [ Alcotest.test_case "oracle surfaces" `Quick test_accrual_surfaces ] );
      ("differential", differential_tests);
    ]
