(* Tests for the campaign engine: the determinism contract (same seed =>
   same result record; -j 1 and -j N => identical merged output), failure
   capture / triage records, and the JSON artifacts. *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core
open Setagree_runner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A real simulator job — consensus with Omega_1 on 5 processes — so the
   determinism property is exercised against the full effect-fiber
   machinery, not a toy closure. *)
let kset_job seed =
  Runner.job ~exp:"testcamp" ~seed
    ~params:[ ("n", Json.Int 5); ("z", Json.Int 1) ]
    ~replay:(Printf.sprintf "dune exec bin/fdkit.exe -- kset -n 5 -t 2 -z 1 -k 1 --seed %d" seed)
    (fun () ->
      let sim = Sim.create ~horizon:3000.0 ~n:5 ~t:2 ~seed () in
      let rng = Rng.split_named (Sim.rng sim) "crash" in
      Sim.install_crashes sim
        (Crash.generate (Crash.Exactly { crashes = 1; window = (0.0, 20.0) }) ~n:5 ~t:2 rng);
      let omega, _ = Oracle.omega_z sim ~z:1 ~behavior:(Behavior.stormy ~gst:30.0) () in
      let proposals = [| 101; 102; 103; 104; 105 |] in
      let h = Kset.install sim ~omega ~proposals () in
      let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
      let v = Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Kset.decisions h) in
      Runner.body
        ~metrics:
          [
            ("rounds", float_of_int (Kset.max_round h));
            ("msgs", float_of_int (Kset.messages_sent h));
            ("latency", o.end_time);
          ]
        ~row:(Printf.sprintf "seed=%d rounds=%d msgs=%d" seed (Kset.max_round h)
                (Kset.messages_sent h))
        (Check.verdict_ok v))

let jobs_of_seeds seeds = List.map kset_job seeds

(* --- determinism ------------------------------------------------------ *)

let test_same_seed_same_result () =
  let c1 = Runner.run ~jobs:1 ~exp:"testcamp" (jobs_of_seeds [ 7 ]) in
  let c2 = Runner.run ~jobs:1 ~exp:"testcamp" (jobs_of_seeds [ 7 ]) in
  check_str "identical signature" (Runner.signature c1) (Runner.signature c2);
  let r1 = c1.Runner.c_results.(0) and r2 = c2.Runner.c_results.(0) in
  check "same ok" true (r1.Runner.r_ok = r2.Runner.r_ok);
  check "same metrics" true (r1.Runner.r_metrics = r2.Runner.r_metrics);
  check_str "same row" r1.Runner.r_row r2.Runner.r_row

let test_parallel_equals_sequential () =
  let seeds = List.init 12 (fun i -> i + 1) in
  let seq = Runner.run ~jobs:1 ~exp:"testcamp" (jobs_of_seeds seeds) in
  let par = Runner.run ~jobs:4 ~exp:"testcamp" (jobs_of_seeds seeds) in
  check_int "worker count recorded" 4 par.Runner.c_workers;
  check_str "merged output identical" (Runner.signature seq) (Runner.signature par);
  Alcotest.(check (list string)) "rows in canonical order" (Runner.rows seq) (Runner.rows par)

let test_seed_sensitivity () =
  let c1 = Runner.run ~jobs:1 ~exp:"testcamp" (jobs_of_seeds [ 1 ]) in
  let c2 = Runner.run ~jobs:1 ~exp:"testcamp" (jobs_of_seeds [ 2 ]) in
  check "different seeds differ" true (Runner.signature c1 <> Runner.signature c2)

(* --- failure capture and triage -------------------------------------- *)

let test_exception_captured () =
  let boom =
    Runner.job ~exp:"testcamp" ~seed:1 ~label:"boom" (fun () -> failwith "kaboom")
  in
  let c = Runner.run ~jobs:2 ~exp:"testcamp" [ boom; kset_job 3 ] in
  let r = c.Runner.c_results.(0) in
  check "exception -> not ok" false r.Runner.r_ok;
  check "error recorded" true
    (match r.Runner.r_error with Some msg -> String.length msg > 0 | None -> false);
  check_int "one failure" 1 (List.length (Runner.failures c));
  (* The healthy job still ran and merged in canonical position. *)
  check "second job ok" true c.Runner.c_results.(1).Runner.r_ok

let test_failure_json_has_replay () =
  let failing =
    Runner.job ~exp:"testcamp" ~seed:42 ~label:"bad"
      ~replay:"dune exec bin/fdkit.exe -- kset --seed 42"
      (fun () -> Runner.body ~notes:[ "agreement violated" ] false)
  in
  let c = Runner.run ~jobs:1 ~exp:"testcamp" [ failing ] in
  let r = List.hd (Runner.failures c) in
  let j = Runner.failure_json r in
  check "has seed" true (Json.member "seed" j = Some (Json.Int 42));
  check "has replay" true
    (Json.member "replay" j = Some (Json.String "dune exec bin/fdkit.exe -- kset --seed 42"));
  check "has notes" true
    (match Json.member "notes" j with Some (Json.List (_ :: _)) -> true | _ -> false)

let test_flush_failures_roundtrip () =
  Runner.reset_sink ();
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "setagree_runner_test" in
  let failing =
    Runner.job ~exp:"testcamp" ~seed:9 ~label:"bad" (fun () ->
        Runner.body ~notes:[ "nope" ] false)
  in
  let _ = Runner.run ~jobs:1 ~exp:"testcamp" [ failing; kset_job 1 ] in
  let count = Runner.flush_failures ~dir () in
  check_int "one failure flushed" 1 count;
  let ic = open_in (Filename.concat dir "failures.json") in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  (match Json.of_string contents with
  | Ok j ->
      check "count field" true (Json.member "failures" j = Some (Json.Int 1));
      check "triage list" true
        (match Json.member "triage" j with Some (Json.List [ _ ]) -> true | _ -> false)
  | Error msg -> Alcotest.failf "failures.json does not parse: %s" msg);
  Runner.reset_sink ()

(* --- artifacts and aggregation --------------------------------------- *)

let test_artifact_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "setagree_runner_test" in
  let c = Runner.run ~jobs:2 ~exp:"artifact_rt" (jobs_of_seeds [ 1; 2; 3 ]) in
  let path = Runner.write_artifact ~dir c in
  check "named after experiment" true (Filename.basename path = "BENCH_artifact_rt.json");
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string contents with
  | Error msg -> Alcotest.failf "artifact does not parse: %s" msg
  | Ok j ->
      check "experiment" true
        (Json.member "experiment" j = Some (Json.String "artifact_rt"));
      check "jobs" true (Json.member "jobs" j = Some (Json.Int 3));
      check "throughput positive" true
        (match Option.bind (Json.member "throughput_jobs_per_s" j) Json.to_float_opt with
        | Some f -> f > 0.0
        | None -> false);
      check "aggregates has rounds" true
        (match Json.member "aggregates" j with
        | Some agg -> Json.member "rounds" agg <> None
        | None -> false);
      check "results length" true
        (match Json.member "results" j with Some (Json.List l) -> List.length l = 3 | _ -> false)

let test_metric_summaries_skip_empty () =
  (* A campaign whose only job reports no metrics must aggregate to
     nothing rather than raise (Stats.summarize_opt at work). *)
  let bare = Runner.job ~exp:"testcamp" ~seed:1 (fun () -> Runner.body true) in
  let c = Runner.run ~jobs:1 ~exp:"testcamp" [ bare ] in
  check_int "no aggregates" 0 (List.length (Runner.metric_summaries c))

let test_workers_clamped_to_jobs () =
  let c = Runner.run ~jobs:8 ~exp:"testcamp" (jobs_of_seeds [ 1; 2 ]) in
  check "workers <= jobs" true (c.Runner.c_workers <= 2)

let test_default_label () =
  let j = Runner.job ~exp:"e99" ~seed:5 (fun () -> Runner.body true) in
  check_str "default label" "e99/seed=5" j.Runner.label

(* --- cache robustness -------------------------------------------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "setagree_cache_%s_%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  dir

(* The kset job again, but keyed so [Runner.run] routes it through the
   cache. *)
let cached_job seed =
  let j = kset_job seed in
  Runner.job ~exp:j.Runner.exp ~seed ~label:j.Runner.label
    ~key:(Runner.Cache.key ~parts:[ "cachefuzz"; string_of_int seed ])
    j.Runner.run

let cache_entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun shard ->
         let sd = Filename.concat dir shard in
         if Sys.is_directory sd then
           Sys.readdir sd |> Array.to_list
           |> List.filter (fun f -> Filename.check_suffix f ".json")
           |> List.map (Filename.concat sd)
         else [])
  |> List.sort compare

(* Fuzzed corruption: every entry on disk is mangled a different way —
   emptied, truncated at two depths, one byte flipped, overwritten with
   garbage, header flipped.  Every mangled entry must be detected as a
   counted miss (never an exception, never a false hit), unlinked, and
   healed by the re-execution's store; the campaign output must be
   byte-identical throughout. *)
let test_cache_corruption_fuzz () =
  let dir = scratch "fuzz" in
  let seeds = List.init 6 (fun i -> i + 1) in
  let cache = Runner.Cache.create ~dir () in
  let cold = Runner.run ~jobs:2 ~cache ~exp:"testcamp" (List.map cached_job seeds) in
  let signature = Runner.signature cold in
  check_int "every job stored" 6 (Runner.Cache.stores cache);
  let entries = cache_entry_files dir in
  check_int "six entries on disk" 6 (List.length entries);
  List.iteri
    (fun i path ->
      let contents = In_channel.with_open_bin path In_channel.input_all in
      let n = String.length contents in
      let flip s pos =
        let b = Bytes.of_string s in
        Bytes.set b pos (if Bytes.get b pos = 'x' then 'y' else 'x');
        Bytes.to_string b
      in
      let mangled =
        match i mod 6 with
        | 0 -> "" (* emptied *)
        | 1 -> String.sub contents 0 (n / 2) (* truncated mid-payload *)
        | 2 -> String.sub contents 0 (n - 2) (* closing brace lost *)
        | 3 -> flip contents (n / 2) (* bit rot mid-payload *)
        | 4 -> "not json at all"
        | _ -> flip contents 1 (* mangled header *)
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc mangled))
    entries;
  Runner.Cache.reset_stats cache;
  let warm = Runner.run ~jobs:2 ~cache ~exp:"testcamp" (List.map cached_job seeds) in
  check_str "corruption never changes the output" signature
    (Runner.signature warm);
  check_int "every mangled entry detected" 6 (Runner.Cache.corrupt cache);
  check_int "each corrupt entry is a counted miss" 6 (Runner.Cache.misses cache);
  check_int "no false hits" 0 (Runner.Cache.hits cache);
  check_int "slots healed by re-store" 6 (Runner.Cache.stores cache);
  check_int "campaign attributes the corruption" 6 warm.Runner.c_cache_corrupt;
  check_int "no write failures" 0 warm.Runner.c_cache_write_failed;
  (* The healed entries are trusted again: a third pass is all hits. *)
  Runner.Cache.reset_stats cache;
  let healed =
    Runner.run ~jobs:2 ~cache ~exp:"testcamp" (List.map cached_job seeds)
  in
  check_str "healed signature identical" signature (Runner.signature healed);
  check_int "healed entries all hit" 6 (Runner.Cache.hits cache);
  check_int "nothing corrupt after healing" 0 (Runner.Cache.corrupt cache);
  rm_rf dir

(* A store that cannot reach the disk (here: the shard directory is
   blocked by a regular file) is a counted degradation, not a failure —
   the result is already in hand, only reuse is lost. *)
let test_cache_write_failure_counted () =
  let dir = scratch "wfail" in
  let cache = Runner.Cache.create ~dir () in
  let k = Runner.Cache.key ~parts:[ "wfail"; "1" ] in
  let shard = Filename.concat dir (String.sub k 0 2) in
  Out_channel.with_open_bin shard (fun oc ->
      Out_channel.output_string oc "in the way");
  let job = Runner.job ~exp:"testcamp" ~seed:1 ~key:k (fun () -> Runner.body true) in
  let c = Runner.run ~jobs:1 ~cache ~exp:"testcamp" [ job ] in
  check "job still succeeded" true c.Runner.c_results.(0).Runner.r_ok;
  check_int "write failure counted" 1 (Runner.Cache.write_failed cache);
  check_int "nothing stored" 0 (Runner.Cache.stores cache);
  check_int "campaign attributes the write failure" 1 c.Runner.c_cache_write_failed;
  rm_rf dir

let () =
  (* Keep the triage sink clean: these tests run inside dune's test
     runner, and campaigns recorded here must not leak between cases. *)
  Runner.reset_sink ();
  Alcotest.run "runner"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same result" `Quick test_same_seed_same_result;
          Alcotest.test_case "-j 1 equals -j 4" `Quick test_parallel_equals_sequential;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        ] );
      ( "triage",
        [
          Alcotest.test_case "exception captured" `Quick test_exception_captured;
          Alcotest.test_case "failure json" `Quick test_failure_json_has_replay;
          Alcotest.test_case "flush failures" `Quick test_flush_failures_roundtrip;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "artifact roundtrip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "empty metrics" `Quick test_metric_summaries_skip_empty;
          Alcotest.test_case "workers clamp" `Quick test_workers_clamped_to_jobs;
          Alcotest.test_case "default label" `Quick test_default_label;
        ] );
      ( "cache-robustness",
        [
          Alcotest.test_case "fuzzed corruption = counted miss" `Quick
            test_cache_corruption_fuzz;
          Alcotest.test_case "write failure counted" `Quick
            test_cache_write_failure_counted;
        ] );
    ]
