(* Tests for the event-driven scheduler (Sim.Cond): condition mechanics,
   observability counters, and the differential property the refactor rests
   on — the arena/condition engine, the legacy-poll scheduler and the
   legacy closure-per-event queue produce {e identical} executions
   (decisions with times, rounds, stop reasons, event counts) for the same
   seed, across algorithms, crash schedules and oracle behaviours.  The
   legacy-poll scheduler re-evaluates every blocked predicate after every
   event; the condition scheduler only the signalled ones, so the
   comparison also pins down the signal-completeness of the substrates
   (every state change a predicate can read signals the right condition).
   The legacy-queue comparison pins the flat event arena and batched
   delivery to the closure queue they replaced (under continuous delays,
   where batches are singletons and even raw event counts agree).  An
   allocation suite asserts the arena engine's steady state promotes
   nothing. *)

open Setagree_util
open Setagree_dsys
open Setagree_net
open Setagree_fd
open Setagree_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Condition mechanics --- *)

let test_signal_wakes_when_pred_holds () =
  let sim = Sim.create ~n:2 ~t:0 ~seed:1 () in
  let c = Sim.Cond.create sim in
  let flag = ref false in
  let woke_at = ref (-1.0) in
  Sim.spawn sim ~pid:0 (fun () ->
      Sim.Cond.await [ c ] (fun () -> !flag);
      woke_at := Sim.now sim);
  Sim.schedule sim ~delay:3.0 (fun () ->
      flag := true;
      Sim.Cond.signal c);
  ignore (Sim.run sim);
  Alcotest.(check (float 1e-9)) "woken at the signalling event" 3.0 !woke_at

let test_signal_with_false_pred_keeps_blocked () =
  let sim = Sim.create ~n:2 ~t:0 ~seed:1 () in
  let c = Sim.Cond.create sim in
  let woke = ref false in
  Sim.spawn sim ~pid:0 (fun () ->
      Sim.Cond.await [ c ] (fun () -> false);
      woke := true);
  Sim.schedule sim ~delay:1.0 (fun () -> Sim.Cond.signal c);
  ignore (Sim.run sim);
  check "spurious signal did not wake" false !woke

let test_no_signal_no_reevaluation () =
  (* The whole point: a condition waiter's predicate is NOT re-evaluated by
     unrelated events. *)
  let sim = Sim.create ~n:2 ~t:0 ~seed:1 () in
  let c = Sim.Cond.create sim in
  let evals = ref 0 in
  Sim.spawn sim ~pid:0 (fun () ->
      Sim.Cond.await [ c ]
        (fun () ->
          incr evals;
          false));
  for i = 1 to 50 do
    Sim.schedule sim ~delay:(float_of_int i) (fun () -> ())
  done;
  ignore (Sim.run sim);
  check_int "evaluated once, at block time" 1 !evals

let test_poll_cond_reevaluated_every_event () =
  let sim = Sim.create ~n:2 ~t:0 ~seed:1 () in
  let evals = ref 0 in
  Sim.spawn sim ~pid:0 (fun () ->
      Sim.Cond.await
        [ Sim.Cond.poll sim ]
        (fun () ->
          incr evals;
          false));
  for i = 1 to 10 do
    Sim.schedule sim ~delay:(float_of_int i) (fun () -> ())
  done;
  ignore (Sim.run sim);
  (* Block-time evaluation + one per subsequent event. *)
  check "re-evaluated at each event" true (!evals >= 10)

let test_any_of_several_conds_wakes () =
  let sim = Sim.create ~n:2 ~t:0 ~seed:1 () in
  let a = Sim.Cond.create sim and b = Sim.Cond.create sim in
  let flag = ref false in
  let woke = ref false in
  Sim.spawn sim ~pid:0 (fun () ->
      Sim.Cond.await [ a; b ] (fun () -> !flag);
      woke := true);
  Sim.schedule sim ~delay:2.0 (fun () ->
      flag := true;
      Sim.Cond.signal b);
  ignore (Sim.run sim);
  check "second condition suffices" true !woke

let test_foreign_cond_rejected () =
  let sim = Sim.create ~n:2 ~t:0 ~seed:1 () in
  let other = Sim.create ~n:2 ~t:0 ~seed:2 () in
  let c = Sim.Cond.create other in
  Sim.spawn sim ~pid:0 (fun () -> Sim.Cond.await [ c ] (fun () -> true));
  check "foreign condition rejected" true
    (try
       ignore (Sim.run sim);
       false
     with Invalid_argument _ -> true)

let test_crashed_waiter_dropped_not_resumed () =
  let sim = Sim.create ~n:3 ~t:1 ~seed:1 () in
  Sim.install_crashes sim [ (0, 5.0) ];
  let c = Sim.Cond.create sim in
  let flag = ref false in
  let woke = ref false in
  Sim.spawn sim ~pid:0 (fun () ->
      Sim.Cond.await [ c ] (fun () -> !flag);
      woke := true);
  Sim.schedule sim ~delay:10.0 (fun () ->
      flag := true;
      Sim.Cond.signal c);
  ignore (Sim.run sim);
  check "crashed fiber never resumed" false !woke

let test_zero_time_wakeup_chain () =
  (* Waking one fiber signals the next at the same instant: the drain must
     iterate to a fixpoint within the event. *)
  let sim = Sim.create ~n:4 ~t:0 ~seed:1 () in
  let conds = Array.init 3 (fun _ -> Sim.Cond.create sim) in
  let stage = ref 0 in
  let done_at = ref (-1.0) in
  for i = 0 to 2 do
    Sim.spawn sim ~pid:i (fun () ->
        Sim.Cond.await [ conds.(i) ] (fun () -> !stage >= i + 1);
        if i < 2 then begin
          stage := i + 2;
          Sim.Cond.signal conds.(i + 1)
        end
        else done_at := Sim.now sim)
  done;
  Sim.schedule sim ~delay:1.0 (fun () ->
      stage := 1;
      Sim.Cond.signal conds.(0));
  ignore (Sim.run sim);
  Alcotest.(check (float 1e-9)) "whole chain fired in one instant" 1.0 !done_at

(* --- Observability --- *)

let run_kset_mode ?(legacy_queue = false) ~legacy_poll ~seed ~n ~t ~z ~crashes () =
  let sim = Sim.create ~horizon:3000.0 ~legacy_poll ~legacy_queue ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes; window = (0.0, 30.0) }) ~n ~t rng);
  let omega, _ = Oracle.omega_z sim ~z ~behavior:(Behavior.stormy ~gst:40.0) () in
  let proposals = Array.init n (fun i -> 100 + i) in
  let h = Kset.install sim ~omega ~proposals () in
  let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
  (sim, h, o)

let test_counters_populated_and_flushed () =
  let sim, _, o = run_kset_mode ~legacy_poll:false ~seed:3 ~n:7 ~t:3 ~z:2 ~crashes:2 () in
  check "pred evals counted" true (Sim.pred_evals sim > 0);
  check "signals counted" true (Sim.cond_signals sim > 0);
  check "wakeups counted" true (Sim.wakeups sim > 0);
  let tr = Sim.trace sim in
  check_int "pred_evals flushed to trace" (Sim.pred_evals sim)
    (Trace.counter tr "sched.pred_evals");
  check_int "signals flushed to trace" (Sim.cond_signals sim)
    (Trace.counter tr "sched.signals");
  check_int "wakeups flushed to trace" (Sim.wakeups sim)
    (Trace.counter tr "sched.wakeups");
  check_int "events flushed to trace" o.Sim.events (Trace.counter tr "sched.events")

let test_cond_mode_evaluates_fewer_predicates () =
  (* The acceptance criterion in miniature: same run, far fewer predicate
     evaluations under the condition scheduler. *)
  let sim_c, _, _ = run_kset_mode ~legacy_poll:false ~seed:3 ~n:9 ~t:4 ~z:2 ~crashes:2 () in
  let sim_l, _, _ = run_kset_mode ~legacy_poll:true ~seed:3 ~n:9 ~t:4 ~z:2 ~crashes:2 () in
  check "strictly fewer evaluations" true (Sim.pred_evals sim_c < Sim.pred_evals sim_l)

(* --- Differential: condition scheduler == legacy-poll scheduler --- *)

type fingerprint = {
  decisions : (Pid.t * int * int * float) list;
  rounds : int;
  reason : Sim.stop_reason;
  events : int;
  end_time : float;
  verdict_ok : bool;
}

let fingerprint_kset ?(legacy_queue = false) ~legacy_poll ~seed ~n ~t ~z ~crashes () =
  let sim, h, o = run_kset_mode ~legacy_queue ~legacy_poll ~seed ~n ~t ~z ~crashes () in
  let proposals = Array.init n (fun i -> 100 + i) in
  let v = Check.k_set_agreement sim ~k:z ~proposals ~decisions:(Kset.decisions h) in
  {
    decisions = Kset.decisions h;
    rounds = Kset.max_round h;
    reason = o.Sim.reason;
    events = o.Sim.events;
    end_time = o.Sim.end_time;
    verdict_ok = Check.verdict_ok v;
  }

let fingerprint_cons_s ?(legacy_queue = false) ~legacy_poll ~seed ~n ~t ~crashes () =
  let sim = Sim.create ~horizon:3000.0 ~legacy_poll ~legacy_queue ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes; window = (0.0, 25.0) }) ~n ~t rng);
  let suspector, _ = Oracle.es_x sim ~x:n ~behavior:(Behavior.stormy ~gst:40.0) () in
  let proposals = Array.init n (fun i -> 100 + i) in
  let h = Consensus_s.install sim ~suspector ~proposals () in
  let o = Sim.run ~stop_when:(fun () -> Consensus_s.all_correct_decided h) sim in
  let v = Check.k_set_agreement sim ~k:1 ~proposals ~decisions:(Consensus_s.decisions h) in
  {
    decisions = Consensus_s.decisions h;
    rounds = Consensus_s.max_round h;
    reason = o.Sim.reason;
    events = o.Sim.events;
    end_time = o.Sim.end_time;
    verdict_ok = Check.verdict_ok v;
  }

let same_fingerprint label a b =
  if a <> b then
    Alcotest.failf "%s: schedulers diverge (%d vs %d decisions, %d vs %d rounds, %d vs %d events)"
      label (List.length a.decisions) (List.length b.decisions) a.rounds b.rounds
      a.events b.events

let test_differential_kset_seeds () =
  for seed = 1 to 10 do
    let a = fingerprint_kset ~legacy_poll:false ~seed ~n:7 ~t:3 ~z:2 ~crashes:2 () in
    let b = fingerprint_kset ~legacy_poll:true ~seed ~n:7 ~t:3 ~z:2 ~crashes:2 () in
    same_fingerprint (Printf.sprintf "kset seed %d" seed) a b;
    check "verdict ok" true a.verdict_ok
  done

let test_differential_cons_s_seeds () =
  for seed = 1 to 10 do
    let a = fingerprint_cons_s ~legacy_poll:false ~seed ~n:7 ~t:3 ~crashes:2 () in
    let b = fingerprint_cons_s ~legacy_poll:true ~seed ~n:7 ~t:3 ~crashes:2 () in
    same_fingerprint (Printf.sprintf "cons_s seed %d" seed) a b;
    check "verdict ok" true a.verdict_ok
  done

(* Three-way differential: the arena engine (cond), the legacy re-poll
   scheduler, and the legacy closure-per-event queue must all produce the
   same execution.  The queue baseline is only compared under continuous
   delay distributions (the default Uniform): the arena batches
   same-instant same-destination deliveries into one event, so discrete
   distributions (Psync) can legitimately differ in raw event counts
   while agreeing on everything else. *)

let test_differential_kset_three_way () =
  for seed = 1 to 10 do
    let a = fingerprint_kset ~legacy_poll:false ~seed ~n:7 ~t:3 ~z:2 ~crashes:2 () in
    let b = fingerprint_kset ~legacy_poll:true ~seed ~n:7 ~t:3 ~z:2 ~crashes:2 () in
    let c = fingerprint_kset ~legacy_queue:true ~legacy_poll:false ~seed ~n:7 ~t:3 ~z:2 ~crashes:2 () in
    same_fingerprint (Printf.sprintf "kset seed %d cond/poll" seed) a b;
    same_fingerprint (Printf.sprintf "kset seed %d cond/queue" seed) a c;
    check "verdict ok" true a.verdict_ok
  done

let test_differential_cons_s_queue_seeds () =
  for seed = 1 to 10 do
    let a = fingerprint_cons_s ~legacy_poll:false ~seed ~n:7 ~t:3 ~crashes:2 () in
    let c = fingerprint_cons_s ~legacy_queue:true ~legacy_poll:false ~seed ~n:7 ~t:3 ~crashes:2 () in
    same_fingerprint (Printf.sprintf "cons_s seed %d cond/queue" seed) a c;
    check "verdict ok" true a.verdict_ok
  done

(* --- Allocation profile: the steady state promotes nothing --- *)

let test_steady_state_promotes_nothing () =
  (* A warmed-up simulator running only its self-re-arming ticker: 10k
     events through the arena must not promote a single word — the
     allocation-free steady state the flat-arena engine guarantees. *)
  let sim = Sim.create ~horizon:11_000.0 ~n:8 ~t:3 ~seed:1 () in
  Sim.ticker sim ~every:1.0;
  let warm = ref 0 in
  let _ = Sim.run ~stop_when:(fun () -> incr warm; !warm >= 500) sim in
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let o = Sim.run sim in
  let g1 = Gc.quick_stat () in
  check "ran >= 10k steady-state events" true (o.Sim.events >= 10_000);
  Alcotest.(check (float 0.0))
    "zero promoted words across steady-state events" 0.0
    (g1.Gc.promoted_words -. g0.Gc.promoted_words)

let qcheck_differential_kset =
  QCheck.Test.make ~name:"random (seed, z, crashes): cond == legacy-poll" ~count:20
    (QCheck.make
       ~print:(fun (s, z, c) -> Printf.sprintf "seed=%d z=%d crashes=%d" s z c)
       QCheck.Gen.(triple (int_range 100 50_000) (int_range 1 3) (int_range 0 3)))
    (fun (seed, z, crashes) ->
      let a = fingerprint_kset ~legacy_poll:false ~seed ~n:7 ~t:3 ~z ~crashes () in
      let b = fingerprint_kset ~legacy_poll:true ~seed ~n:7 ~t:3 ~z ~crashes () in
      a = b && a.verdict_ok)

(* Adversarial transports: the differential property must also hold when
   the network itself is hostile — heavy-tailed delays, partial synchrony
   with a late GST, fair-lossy links.  Loss can leave the run undecided at
   the horizon (liveness is forfeit without retransmission), so the
   verdict is only asserted loss-free; the fingerprints must match
   regardless. *)

let fingerprint_kset_adv ~legacy_poll ~seed ~delay ?loss () =
  let n = 7 and t = 3 and z = 2 in
  let sim = Sim.create ~horizon:3000.0 ~legacy_poll ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes = 2; window = (0.0, 30.0) }) ~n ~t rng);
  let omega, _ = Oracle.omega_z sim ~z ~behavior:(Behavior.stormy ~gst:40.0) () in
  let proposals = Array.init n (fun i -> 100 + i) in
  let h = Kset.install sim ~omega ~proposals ~delay ?loss () in
  let o = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
  let v = Check.k_set_agreement sim ~k:z ~proposals ~decisions:(Kset.decisions h) in
  {
    decisions = Kset.decisions h;
    rounds = Kset.max_round h;
    reason = o.Sim.reason;
    events = o.Sim.events;
    end_time = o.Sim.end_time;
    verdict_ok = Check.verdict_ok v;
  }

let adv_delays =
  [
    ("exp(1)", Delay.Exponential 1.0);
    ("psync(gst=30)", Delay.Psync { gst = 30.0; bound = 2.0; pre_spread = 25.0 });
  ]

let adv_losses = [ ("loss=0", None); ("loss=0.2", Some 0.2) ]

let qcheck_differential_kset_adversarial =
  QCheck.Test.make
    ~name:"random (seed, delay, loss): adversarial kset cond == legacy-poll" ~count:16
    (QCheck.make
       ~print:(fun (s, d, l) ->
         Printf.sprintf "seed=%d delay=%s %s" s (fst (List.nth adv_delays d))
           (fst (List.nth adv_losses l)))
       QCheck.Gen.(triple (int_range 100 50_000) (int_range 0 1) (int_range 0 1)))
    (fun (seed, d, l) ->
      let delay = snd (List.nth adv_delays d) in
      let loss = snd (List.nth adv_losses l) in
      let a = fingerprint_kset_adv ~legacy_poll:false ~seed ~delay ?loss () in
      let b = fingerprint_kset_adv ~legacy_poll:true ~seed ~delay ?loss () in
      a = b && (loss <> None || a.verdict_ok))

let qcheck_differential_kset_queue =
  QCheck.Test.make ~name:"random (seed, z, crashes): cond == legacy-queue" ~count:20
    (QCheck.make
       ~print:(fun (s, z, c) -> Printf.sprintf "seed=%d z=%d crashes=%d" s z c)
       QCheck.Gen.(triple (int_range 100 50_000) (int_range 1 3) (int_range 0 3)))
    (fun (seed, z, crashes) ->
      let a = fingerprint_kset ~legacy_poll:false ~seed ~n:7 ~t:3 ~z ~crashes () in
      let c = fingerprint_kset ~legacy_queue:true ~legacy_poll:false ~seed ~n:7 ~t:3 ~z ~crashes () in
      a = c && a.verdict_ok)

let qcheck_differential_cons_s =
  QCheck.Test.make ~name:"random (seed, crashes): cons_s cond == legacy-poll" ~count:10
    (QCheck.make
       ~print:(fun (s, c) -> Printf.sprintf "seed=%d crashes=%d" s c)
       QCheck.Gen.(pair (int_range 100 50_000) (int_range 0 3)))
    (fun (seed, crashes) ->
      let a = fingerprint_cons_s ~legacy_poll:false ~seed ~n:7 ~t:3 ~crashes () in
      let b = fingerprint_cons_s ~legacy_poll:true ~seed ~n:7 ~t:3 ~crashes () in
      a = b && a.verdict_ok)

let () =
  Alcotest.run "sched"
    [
      ( "cond",
        [
          Alcotest.test_case "signal wakes" `Quick test_signal_wakes_when_pred_holds;
          Alcotest.test_case "spurious signal" `Quick test_signal_with_false_pred_keeps_blocked;
          Alcotest.test_case "no signal, no re-eval" `Quick test_no_signal_no_reevaluation;
          Alcotest.test_case "poll cadence" `Quick test_poll_cond_reevaluated_every_event;
          Alcotest.test_case "any-of wakes" `Quick test_any_of_several_conds_wakes;
          Alcotest.test_case "foreign cond" `Quick test_foreign_cond_rejected;
          Alcotest.test_case "crashed waiter dropped" `Quick test_crashed_waiter_dropped_not_resumed;
          Alcotest.test_case "zero-time chain" `Quick test_zero_time_wakeup_chain;
        ] );
      ( "observability",
        [
          Alcotest.test_case "counters flushed" `Quick test_counters_populated_and_flushed;
          Alcotest.test_case "fewer pred evals" `Quick test_cond_mode_evaluates_fewer_predicates;
        ] );
      ( "differential",
        [
          Alcotest.test_case "kset across seeds" `Quick test_differential_kset_seeds;
          Alcotest.test_case "cons_s across seeds" `Quick test_differential_cons_s_seeds;
          Alcotest.test_case "kset three-way (arena/poll/queue)" `Quick
            test_differential_kset_three_way;
          Alcotest.test_case "cons_s cond == legacy-queue" `Quick
            test_differential_cons_s_queue_seeds;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "steady state promotes nothing" `Quick
            test_steady_state_promotes_nothing;
        ] );
      ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |]))
          [
            qcheck_differential_kset;
            qcheck_differential_kset_queue;
            qcheck_differential_kset_adversarial;
            qcheck_differential_cons_s;
          ] );
    ]
