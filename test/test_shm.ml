(* Tests for the shared-memory substrate (SWMR atomic registers). *)

open Setagree_dsys
open Setagree_shm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk () = Sim.create ~horizon:1000.0 ~n:3 ~t:1 ~seed:1 ()

let test_initial_value () =
  let sim = mk () in
  let r = Register.create sim ~writer:0 42 in
  check_int "initial" 42 (Register.peek r)

let test_write_read () =
  let sim = mk () in
  let r = Register.create sim ~writer:0 0 in
  let got = ref (-1) in
  Sim.spawn sim ~pid:0 (fun () ->
      Register.write r ~by:0 7;
      got := Register.read r ~by:0);
  ignore (Sim.run sim);
  check_int "read back" 7 !got;
  check_int "write count" 1 (Register.write_count r)

let test_writer_enforced () =
  let sim = mk () in
  let r = Register.create sim ~writer:0 0 in
  let raised = ref false in
  Sim.spawn sim ~pid:1 (fun () ->
      try Register.write r ~by:1 5 with Invalid_argument _ -> raised := true);
  ignore (Sim.run sim);
  check "non-writer rejected" true !raised

let test_access_takes_time () =
  let sim = mk () in
  let r = Register.create sim ~writer:0 ~access_time:0.5 0 in
  let t_after = ref 0.0 in
  Sim.spawn sim ~pid:0 (fun () ->
      Register.write r ~by:0 1;
      ignore (Register.read r ~by:0);
      t_after := Sim.now sim);
  ignore (Sim.run sim);
  Alcotest.(check (float 0.001)) "two accesses = 1.0" 1.0 !t_after

let test_reader_sees_concurrent_writes () =
  (* Writer updates every unit; a reader polling sees increasing values. *)
  let sim = mk () in
  let r = Register.create sim ~writer:0 ~access_time:0.01 0 in
  Sim.spawn sim ~pid:0 (fun () ->
      for v = 1 to 10 do
        Register.write r ~by:0 v;
        Sim.sleep 1.0
      done);
  let seen = ref [] in
  Sim.spawn sim ~pid:1 (fun () ->
      for _ = 1 to 10 do
        seen := Register.read r ~by:1 :: !seen;
        Sim.sleep 1.0
      done);
  ignore (Sim.run sim);
  let vals = List.rev !seen in
  check "monotone reads" true (List.sort compare vals = vals);
  check "progress observed" true (List.length (List.sort_uniq compare vals) > 3)

let test_crash_mid_write_no_effect () =
  (* The writer crashes during the access interval: the write never takes
     effect. *)
  let sim = mk () in
  Sim.install_crashes sim [ (0, 0.25) ];
  let r = Register.create sim ~writer:0 ~access_time:0.5 0 in
  Sim.spawn sim ~pid:0 (fun () -> Register.write r ~by:0 99);
  ignore (Sim.run sim);
  check_int "old value survives" 0 (Register.peek r)

let test_write_before_crash_persists () =
  let sim = mk () in
  Sim.install_crashes sim [ (0, 5.0) ];
  let r = Register.create sim ~writer:0 ~access_time:0.1 0 in
  Sim.spawn sim ~pid:0 (fun () -> Register.write r ~by:0 13);
  ignore (Sim.run sim);
  check_int "completed write persists after crash" 13 (Register.peek r)

let () =
  Alcotest.run "shm"
    [
      ( "register",
        [
          Alcotest.test_case "initial" `Quick test_initial_value;
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "writer enforced" `Quick test_writer_enforced;
          Alcotest.test_case "access time" `Quick test_access_takes_time;
          Alcotest.test_case "concurrent reads" `Quick test_reader_sees_concurrent_writes;
          Alcotest.test_case "crash mid-write" `Quick test_crash_mid_write_no_effect;
          Alcotest.test_case "write persists" `Quick test_write_before_crash_persists;
        ] );
    ]
