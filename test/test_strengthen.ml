(* Tests for the Appendix-B strengthening algorithm (Figure 9):
   S_x + φ_y → S and ◇S_x + ◇φ_y → ◇S for x + y >= t + 1, on both the
   shared-memory substrate (the paper's presentation) and the
   message-passing translation. *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

let check = Alcotest.(check bool)
let gst = 35.0
let horizon = 300.0
let deadline = horizon -. 80.0

let setup ?(n = 7) ?(t = 3) ?(crashes = 0) ~seed () =
  let sim = Sim.create ~horizon ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes; window = (0.0, 20.0) }) ~n ~t rng);
  sim

let run ?(n = 7) ?(t = 3) ~x ~y ~crashes ~substrate ~eventual ~seed () =
  let sim = setup ~n ~t ~crashes ~seed () in
  let behavior = Behavior.stormy ~gst in
  let suspector, _ =
    if eventual then Oracle.es_x sim ~x ~behavior () else Oracle.s_x sim ~x ~behavior ()
  in
  let querier, _ =
    if eventual then Oracle.ephi_y sim ~y ~behavior () else Oracle.phi_y sim ~y ~behavior ()
  in
  let st =
    match substrate with
    | `Shm -> Strengthen.install_shm sim ~suspector ~querier ()
    | `Mp -> Strengthen.install_mp sim ~suspector ~querier ()
  in
  let out = Strengthen.output st in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> out.Iface.suspected i) () in
  ignore (Sim.run sim);
  (sim, st, mon)

let assert_es_full_scope sim mon label =
  let v = Check.es_x sim ~x:(Sim.n sim) ~deadline mon in
  if not (Check.verdict_ok v) then
    Alcotest.failf "%s: %s" label (String.concat "; " v.notes)

let test_shm_eventual_sweep () =
  List.iter
    (fun (x, y, crashes, seed) ->
      let sim, _, mon = run ~x ~y ~crashes ~substrate:`Shm ~eventual:true ~seed () in
      assert_es_full_scope sim mon (Printf.sprintf "shm x=%d y=%d crashes=%d" x y crashes))
    [ (2, 2, 2, 1); (1, 3, 3, 2); (3, 1, 1, 3); (4, 0, 2, 4) ]

let test_mp_eventual_sweep () =
  List.iter
    (fun (x, y, crashes, seed) ->
      let sim, _, mon = run ~x ~y ~crashes ~substrate:`Mp ~eventual:true ~seed () in
      assert_es_full_scope sim mon (Printf.sprintf "mp x=%d y=%d crashes=%d" x y crashes))
    [ (2, 2, 2, 11); (1, 3, 3, 12); (3, 1, 0, 13) ]

let test_perpetual_inputs () =
  (* S_x + φ_y: the strengthened accuracy is eventually full-scope; check
     the ◇S_n certificate (our finite-run proxy for S: the perpetual
     property needs outputs from time 0, but SUSPECTED starts empty and is
     built incrementally, so accuracy-from-0 holds trivially while
     completeness needs time). *)
  List.iter
    (fun substrate ->
      let sim, _, mon = run ~x:2 ~y:2 ~crashes:2 ~substrate ~eventual:false ~seed:21 () in
      assert_es_full_scope sim mon "perpetual inputs";
      (* The perpetual (from = 0) accuracy check must also pass: the
         protected process is never in anyone's SUSPECTED output. *)
      let v = Check.limited_scope_accuracy sim ~x:(Sim.n sim) ~from:0.0 mon in
      check "perpetual full-scope accuracy" true (Check.verdict_ok v))
    [ `Shm; `Mp ]

let test_refreshes_progress () =
  let _, st, _ = run ~x:2 ~y:2 ~crashes:1 ~substrate:`Shm ~eventual:true ~seed:31 () in
  for i = 0 to 6 do
    ignore i
  done;
  check "output refreshed repeatedly" true (Strengthen.refreshes st 0 > 3)

let test_substrates_agree_qualitatively () =
  (* Both substrates certify the same class; message counts obviously
     differ, but verdicts coincide. *)
  let sim1, _, mon1 = run ~x:2 ~y:2 ~crashes:2 ~substrate:`Shm ~eventual:true ~seed:41 () in
  let sim2, _, mon2 = run ~x:2 ~y:2 ~crashes:2 ~substrate:`Mp ~eventual:true ~seed:41 () in
  let v1 = Check.es_x sim1 ~x:7 ~deadline mon1 in
  let v2 = Check.es_x sim2 ~x:7 ~deadline mon2 in
  check "both certified" true (Check.verdict_ok v1 && Check.verdict_ok v2)

let test_max_crash_load () =
  let sim, _, mon = run ~x:3 ~y:1 ~crashes:3 ~substrate:`Mp ~eventual:true ~seed:51 () in
  assert_es_full_scope sim mon "t crashes"

let test_boundary_condition_not_asserted_below () =
  (* x + y = t is below the boundary: the theorem gives no guarantee.  We
     do not assert failure (a lucky run can still look fine); we assert the
     arithmetic says it is out of range, and that the algorithm still runs
     without crashing (it simply may not be an S/◇S). *)
  check "bounds says impossible" false (Bounds.strengthen_possible ~t:3 ~x:2 ~y:1);
  let sim, _, mon = run ~x:2 ~y:1 ~crashes:3 ~substrate:`Mp ~eventual:true ~seed:61 () in
  ignore mon;
  check "still runs" true (Sim.now sim > 0.0)

let test_completeness_of_output () =
  (* Crashed processes eventually enter every correct SUSPECTED. *)
  let sim, _, mon = run ~x:2 ~y:2 ~crashes:3 ~substrate:`Shm ~eventual:true ~seed:71 () in
  let v = Check.strong_completeness sim ~deadline mon in
  check "completeness" true (Check.verdict_ok v)

let test_determinism () =
  let observe () =
    let _, st, mon = run ~x:2 ~y:2 ~crashes:2 ~substrate:`Mp ~eventual:true ~seed:81 () in
    (Strengthen.refreshes st 0, List.init 7 (fun i -> Monitor.final mon i))
  in
  check "replay identical" true (observe () = observe ())

let () =
  Alcotest.run "strengthen"
    [
      ( "shm",
        [
          Alcotest.test_case "eventual sweep" `Quick test_shm_eventual_sweep;
          Alcotest.test_case "refreshes" `Quick test_refreshes_progress;
          Alcotest.test_case "completeness" `Quick test_completeness_of_output;
        ] );
      ( "mp",
        [
          Alcotest.test_case "eventual sweep" `Quick test_mp_eventual_sweep;
          Alcotest.test_case "t crashes" `Quick test_max_crash_load;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "both",
        [
          Alcotest.test_case "perpetual inputs" `Quick test_perpetual_inputs;
          Alcotest.test_case "substrates agree" `Quick test_substrates_agree_qualitatively;
          Alcotest.test_case "below boundary" `Quick test_boundary_condition_not_asserted_below;
        ] );
    ]
