(* Unit and property tests for Setagree_util: pid sets, RNG, priority queue,
   combinatorics and the wheel rings. *)

open Setagree_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pidset                                                              *)
(* ------------------------------------------------------------------ *)

let test_pidset_empty () =
  check "empty is empty" true (Pidset.is_empty Pidset.empty);
  check_int "empty cardinal" 0 (Pidset.cardinal Pidset.empty);
  check "nothing in empty" false (Pidset.mem 0 Pidset.empty)

let test_pidset_add_remove () =
  let s = Pidset.add 3 (Pidset.add 1 Pidset.empty) in
  check "mem 1" true (Pidset.mem 1 s);
  check "mem 3" true (Pidset.mem 3 s);
  check "not mem 2" false (Pidset.mem 2 s);
  check_int "cardinal" 2 (Pidset.cardinal s);
  let s' = Pidset.remove 1 s in
  check "removed" false (Pidset.mem 1 s');
  check "idempotent remove" true (Pidset.equal s' (Pidset.remove 1 s'))

let test_pidset_full () =
  let s = Pidset.full ~n:5 in
  check_int "full cardinal" 5 (Pidset.cardinal s);
  check "contains 0" true (Pidset.mem 0 s);
  check "contains 4" true (Pidset.mem 4 s);
  check "not 5" false (Pidset.mem 5 s)

let test_pidset_ops () =
  let a = Pidset.of_list [ 0; 1; 2 ] and b = Pidset.of_list [ 2; 3 ] in
  check "union" true (Pidset.equal (Pidset.union a b) (Pidset.of_list [ 0; 1; 2; 3 ]));
  check "inter" true (Pidset.equal (Pidset.inter a b) (Pidset.singleton 2));
  check "diff" true (Pidset.equal (Pidset.diff a b) (Pidset.of_list [ 0; 1 ]));
  check "subset yes" true (Pidset.subset (Pidset.singleton 2) a);
  check "subset no" false (Pidset.subset b a);
  check "disjoint no" false (Pidset.disjoint a b);
  check "disjoint yes" true (Pidset.disjoint a (Pidset.singleton 5))

let test_pidset_to_list_sorted () =
  let s = Pidset.of_list [ 5; 1; 3 ] in
  Alcotest.(check (list int)) "ascending" [ 1; 3; 5 ] (Pidset.to_list s)

let test_pidset_min_max () =
  let s = Pidset.of_list [ 4; 2; 9 ] in
  check_int "min" 2 (Pidset.min_elt s);
  Alcotest.(check (option int)) "max" (Some 9) (Pidset.max_elt_opt s);
  Alcotest.(check (option int)) "min empty" None (Pidset.min_elt_opt Pidset.empty);
  check "min_elt raises" true
    (try
       ignore (Pidset.min_elt Pidset.empty);
       false
     with Not_found -> true)

let test_pidset_iterators () =
  let s = Pidset.of_list [ 0; 2; 4 ] in
  check_int "fold sum" 6 (Pidset.fold (fun p acc -> p + acc) s 0);
  check "for_all even" true (Pidset.for_all (fun p -> p mod 2 = 0) s);
  check "exists 4" true (Pidset.exists (fun p -> p = 4) s);
  check "filter" true
    (Pidset.equal (Pidset.filter (fun p -> p > 1) s) (Pidset.of_list [ 2; 4 ]))

let test_pidset_random_size () =
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    let size = Rng.int rng 11 in
    let s = Pidset.random rng ~n:10 ~size in
    check_int "random size" size (Pidset.cardinal s);
    check "subset of full" true (Pidset.subset s (Pidset.full ~n:10))
  done

let test_pidset_pp () =
  Alcotest.(check string) "pp" "{p1,p3}" (Pidset.to_string (Pidset.of_list [ 0; 2 ]))

let pidset_qcheck =
  let gen_set = QCheck.Gen.(map (fun l -> Pidset.of_list l) (list_size (int_bound 10) (int_bound 20))) in
  let arb = QCheck.make ~print:Pidset.to_string gen_set in
  [
    QCheck.Test.make ~name:"union comm" ~count:200 (QCheck.pair arb arb) (fun (a, b) ->
        Pidset.equal (Pidset.union a b) (Pidset.union b a));
    QCheck.Test.make ~name:"inter subset both" ~count:200 (QCheck.pair arb arb)
      (fun (a, b) ->
        let i = Pidset.inter a b in
        Pidset.subset i a && Pidset.subset i b);
    QCheck.Test.make ~name:"diff disjoint" ~count:200 (QCheck.pair arb arb) (fun (a, b) ->
        Pidset.disjoint (Pidset.diff a b) b);
    QCheck.Test.make ~name:"card union + card inter" ~count:200 (QCheck.pair arb arb)
      (fun (a, b) ->
        Pidset.cardinal (Pidset.union a b) + Pidset.cardinal (Pidset.inter a b)
        = Pidset.cardinal a + Pidset.cardinal b);
    QCheck.Test.make ~name:"of_list/to_list roundtrip" ~count:200 arb (fun s ->
        Pidset.equal s (Pidset.of_list (Pidset.to_list s)));
  ]

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 42 and b = Rng.create 43 in
  let da = List.init 10 (fun _ -> Rng.int64 a) in
  let db = List.init 10 (fun _ -> Rng.int64 b) in
  check "different seeds differ" true (da <> db)

let test_rng_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    check "in range" true (v >= 0 && v < 7)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.0 in
    check "float in range" true (v >= 0.0 && v < 3.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  let s1 = List.init 10 (fun _ -> Rng.int64 c1) in
  let s2 = List.init 10 (fun _ -> Rng.int64 c2) in
  check "children differ" true (s1 <> s2)

let test_rng_split_named_stable () =
  let mk () = Rng.create 9 in
  let a = Rng.split_named (mk ()) "alpha" in
  let b = Rng.split_named (mk ()) "alpha" in
  check "same name same stream" true (Rng.int64 a = Rng.int64 b);
  let c = Rng.split_named (mk ()) "beta" in
  check "diff name diff stream" true (Rng.int64 (Rng.split_named (mk ()) "alpha") <> Rng.int64 c)

let test_rng_split_named_order_independent () =
  let r1 = Rng.create 9 in
  ignore (Rng.int64 r1);
  (* split_named must not depend on draws made since creation? It does use
     current state; document the actual contract: same parent state.  Here we
     check the complementary property: copies agree. *)
  let r2 = Rng.create 9 in
  let a = Rng.split_named (Rng.copy r2) "x" in
  let b = Rng.split_named r2 "x" in
  check "copy preserves stream" true (Rng.int64 a = Rng.int64 b)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    check "p=0 never" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    check "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_rng_exponential_positive () =
  let rng = Rng.create 4 in
  for _ = 1 to 200 do
    check "exp >= 0" true (Rng.exponential rng ~mean:2.0 >= 0.0)
  done

let test_rng_pick_shuffle () =
  let rng = Rng.create 5 in
  let l = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 50 do
    check "pick member" true (List.mem (Rng.pick rng l) l)
  done;
  let s = Rng.shuffle rng l in
  Alcotest.(check (list int)) "shuffle is permutation" l (List.sort compare s)

let test_rng_mean_sanity () =
  let rng = Rng.create 6 in
  let total = ref 0.0 in
  let count = 10_000 in
  for _ = 1 to count do
    total := !total +. Rng.float rng 1.0
  done;
  let mean = !total /. float_of_int count in
  check "uniform mean near 0.5" true (mean > 0.45 && mean < 0.55)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_basic () =
  let q = Pqueue.create ~cmp:Int.compare in
  check "empty" true (Pqueue.is_empty q);
  Pqueue.push q 5;
  Pqueue.push q 1;
  Pqueue.push q 3;
  check_int "length" 3 (Pqueue.length q);
  Alcotest.(check (option int)) "peek min" (Some 1) (Pqueue.peek q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop 5" (Some 5) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop empty" None (Pqueue.pop q)

let test_pqueue_clear () =
  let q = Pqueue.create ~cmp:Int.compare in
  Pqueue.push q 1;
  Pqueue.clear q;
  check "cleared" true (Pqueue.is_empty q)

let test_pqueue_sorts () =
  let rng = Rng.create 11 in
  let q = Pqueue.create ~cmp:Int.compare in
  let items = List.init 500 (fun _ -> Rng.int rng 10_000) in
  List.iter (Pqueue.push q) items;
  let rec drain acc = match Pqueue.pop q with None -> List.rev acc | Some v -> drain (v :: acc) in
  Alcotest.(check (list int)) "heap sort" (List.sort compare items) (drain [])

let test_pqueue_stability_by_cmp () =
  (* (time, seq) ordering: ties on time break by seq. *)
  let cmp (t1, s1) (t2, s2) =
    let c = Float.compare t1 t2 in
    if c <> 0 then c else Int.compare s1 s2
  in
  let q = Pqueue.create ~cmp in
  Pqueue.push q (1.0, 2);
  Pqueue.push q (1.0, 0);
  Pqueue.push q (1.0, 1);
  let v1 = Pqueue.pop q and v2 = Pqueue.pop q and v3 = Pqueue.pop q in
  check "tie order" true (v1 = Some (1.0, 0) && v2 = Some (1.0, 1) && v3 = Some (1.0, 2))

(* Sorted-snapshot property: a push-all / pop-until-empty cycle is a
   sort, and [to_list] shows exactly that order without disturbing the
   heap. *)
let pqueue_sorted_qcheck =
  QCheck.Test.make ~name:"pqueue pop sequence = sorted" ~count:200
    QCheck.(list (int_bound 1000))
    (fun items ->
      let q = Pqueue.create ~cmp:Int.compare in
      List.iter (Pqueue.push q) items;
      let snapshot = Pqueue.to_list q in
      let rec drain acc =
        match Pqueue.pop q with None -> List.rev acc | Some v -> drain (v :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare items && snapshot = popped)

(* ------------------------------------------------------------------ *)
(* Earena                                                              *)
(* ------------------------------------------------------------------ *)

let test_earena_basic () =
  let a = Earena.create ~initial:4 () in
  check "empty" true (Earena.is_empty a);
  check "peek empty = inf" true (Earena.peek_time a = infinity);
  check_int "pop empty = -1" (-1) (Earena.pop a);
  let s1 = Earena.add a ~time:2.0 ~kind:1 ~arg:10 in
  let s2 = Earena.add a ~time:1.0 ~kind:2 ~arg:20 in
  let s3 = Earena.add a ~time:3.0 ~kind:3 ~arg:30 in
  check_int "length" 3 (Earena.length a);
  check "peek = 1.0" true (Earena.peek_time a = 1.0);
  check "mem live" true (Earena.mem a s1 && Earena.mem a s2 && Earena.mem a s3);
  let p = Earena.pop a in
  check_int "min slot" s2 p;
  check_int "kind survives pop" 2 (Earena.kind_of a p);
  check_int "arg survives pop" 20 (Earena.arg_of a p);
  check "popped not mem" false (Earena.mem a p);
  check_int "then s1" s1 (Earena.pop a);
  check_int "then s3" s3 (Earena.pop a);
  check "drained" true (Earena.is_empty a)

let test_earena_tie_insertion_order () =
  (* Equal times pop in insertion order — the replay-determinism contract. *)
  let a = Earena.create () in
  let slots = List.init 10 (fun i -> Earena.add a ~time:1.0 ~kind:0 ~arg:i) in
  List.iter (fun s -> check_int "fifo at one instant" s (Earena.pop a)) slots

let test_earena_cancel () =
  let a = Earena.create () in
  let s1 = Earena.add a ~time:1.0 ~kind:0 ~arg:1 in
  let s2 = Earena.add a ~time:2.0 ~kind:0 ~arg:2 in
  check "cancel live" true (Earena.cancel a s1);
  check "cancel stale refused" false (Earena.cancel a s1);
  check "cancel bogus refused" false (Earena.cancel a 9999);
  check_int "s2 remains" s2 (Earena.pop a);
  check "empty after" true (Earena.is_empty a)

let test_earena_grow_and_recycle () =
  (* Force growth past the initial capacity, then verify steady-state slot
     recycling keeps capacity fixed. *)
  let a = Earena.create ~initial:4 () in
  let slots = Array.init 100 (fun i -> Earena.add a ~time:(float_of_int i) ~kind:0 ~arg:i) in
  ignore slots;
  for i = 0 to 99 do
    let s = Earena.pop a in
    check_int "fifo by time" i (Earena.arg_of a s)
  done;
  let cap = Earena.capacity a in
  for round = 0 to 999 do
    let s = Earena.add a ~time:(float_of_int round) ~kind:0 ~arg:round in
    let p = Earena.pop a in
    check_int "recycled slot round-trips arg" round (Earena.arg_of a p);
    ignore s
  done;
  check_int "capacity stable in steady state" cap (Earena.capacity a)

(* The arena against a sorted-list model AND against the legacy Pqueue it
   replaced, under interleaved add / pop / cancel with slot recycling —
   the schedule-preservation half of the engine overhaul in property
   form. *)
let earena_differential_qcheck =
  (* ops: 0-2 = add (time bucket), 3 = pop, 4 = cancel a random live slot *)
  let gen_ops = QCheck.Gen.(list_size (int_range 0 200) (int_bound 4)) in
  QCheck.Test.make ~name:"earena = legacy pqueue under add/pop/cancel" ~count:200
    (QCheck.make ~print:(fun l -> String.concat "," (List.map string_of_int l)) gen_ops)
    (fun ops ->
      let cmp (t1, s1, _) (t2, s2, _) =
        let c = Float.compare t1 t2 in
        if c <> 0 then c else Int.compare s1 s2
      in
      let a = Earena.create ~initial:4 () in
      let q = Pqueue.create ~cmp in
      (* live: arena slot -> (time, seq, arg) as mirrored in the model *)
      let live = Hashtbl.create 16 in
      let seq = ref 0 in
      let next_arg = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          if op <= 2 then begin
            let time = float_of_int ((op * 17) mod 5) in
            let arg = !next_arg in
            incr next_arg;
            let slot = Earena.add a ~time ~kind:op ~arg in
            Hashtbl.replace live slot (time, !seq, arg);
            Pqueue.push q (time, !seq, arg);
            incr seq
          end
          else if op = 3 then begin
            let s = Earena.pop a in
            match Pqueue.pop q with
            | None -> if s <> -1 then ok := false
            | Some (_, _, arg) ->
                if s = -1 || Earena.arg_of a s <> arg then ok := false
                else Hashtbl.remove live s
          end
          else begin
            (* Cancel the live slot with the smallest id, if any. *)
            let victim =
              Hashtbl.fold (fun s _ acc -> match acc with Some m -> Some (min m s) | None -> Some s) live None
            in
            match victim with
            | None -> ()
            | Some s ->
                let entry = Hashtbl.find live s in
                if not (Earena.cancel a s) then ok := false;
                Hashtbl.remove live s;
                (* Remove from the model by rebuilding without the entry. *)
                let rest = List.filter (fun e -> e <> entry) (Pqueue.to_list q) in
                Pqueue.clear q;
                List.iter (Pqueue.push q) rest
          end)
        ops;
      (* Drain both: remaining schedules must agree exactly. *)
      let rec drain_both () =
        match Pqueue.pop q with
        | None -> Earena.pop a = -1
        | Some (_, _, arg) ->
            let s = Earena.pop a in
            s <> -1 && Earena.arg_of a s = arg && drain_both ()
      in
      !ok && drain_both ())

let earena_sorted_qcheck =
  QCheck.Test.make ~name:"earena pop sequence = sorted" ~count:200
    QCheck.(list (pair (int_bound 10) (int_bound 1000)))
    (fun items ->
      let a = Earena.create () in
      List.iter (fun (tm, arg) -> ignore (Earena.add a ~time:(float_of_int tm) ~kind:0 ~arg)) items;
      let snapshot = Earena.to_sorted_list a in
      let rec drain acc =
        let s = Earena.pop a in
        if s = -1 then List.rev acc
        else drain ((Earena.time_of a s, Earena.arg_of a s) :: acc)
      in
      let popped = drain [] in
      (* Stable sort by time: ties keep insertion order, exactly what
         sorting by (time, seq) produces. *)
      let expected =
        List.stable_sort
          (fun (t1, _) (t2, _) -> Int.compare t1 t2)
          (List.map (fun (tm, arg) -> (tm, arg)) items)
        |> List.map (fun (tm, arg) -> (float_of_int tm, arg))
      in
      popped = expected
      && List.map (fun (tm, _, _, arg) -> (tm, arg)) snapshot = expected)

(* ------------------------------------------------------------------ *)
(* Combi                                                               *)
(* ------------------------------------------------------------------ *)

let test_binomial_values () =
  check_int "C(5,2)" 10 (Combi.binomial 5 2);
  check_int "C(5,0)" 1 (Combi.binomial 5 0);
  check_int "C(5,5)" 1 (Combi.binomial 5 5);
  check_int "C(5,6)" 0 (Combi.binomial 5 6);
  check_int "C(5,-1)" 0 (Combi.binomial 5 (-1));
  check_int "C(10,3)" 120 (Combi.binomial 10 3);
  check_int "C(20,10)" 184756 (Combi.binomial 20 10)

let test_binomial_pascal () =
  for n = 1 to 15 do
    for k = 1 to n - 1 do
      check_int "pascal" (Combi.binomial n k)
        (Combi.binomial (n - 1) (k - 1) + Combi.binomial (n - 1) k)
    done
  done

let test_unrank_first_last () =
  let first = Combi.unrank ~n:6 ~size:3 0 in
  check "first lex" true (Pidset.equal first (Pidset.of_list [ 0; 1; 2 ]));
  let last = Combi.unrank ~n:6 ~size:3 (Combi.binomial 6 3 - 1) in
  check "last lex" true (Pidset.equal last (Pidset.of_list [ 3; 4; 5 ]))

let test_unrank_rank_roundtrip () =
  for n = 1 to 8 do
    for size = 0 to n do
      for r = 0 to Combi.binomial n size - 1 do
        let s = Combi.unrank ~n ~size r in
        check_int "roundtrip" r (Combi.rank ~n s);
        check_int "size" size (Pidset.cardinal s)
      done
    done
  done

let test_unrank_out_of_range () =
  check "raises" true
    (try
       ignore (Combi.unrank ~n:5 ~size:2 10);
       false
     with Invalid_argument _ -> true)

let test_enumerate_all_distinct () =
  let l = List.of_seq (Combi.enumerate ~n:7 ~size:3) in
  check_int "count" (Combi.binomial 7 3) (List.length l);
  let sorted = List.sort_uniq Pidset.compare l in
  check_int "distinct" (List.length l) (List.length sorted)

let test_enumerate_lex_increasing () =
  (* In lexicographic order on ascending element lists. *)
  let l = List.of_seq (Combi.enumerate ~n:6 ~size:2) in
  let as_lists = List.map Pidset.to_list l in
  let sorted = List.sort compare as_lists in
  Alcotest.(check (list (list int))) "lex order" sorted as_lists

let test_unrank_in_base () =
  let base = Pidset.of_list [ 2; 5; 7; 9 ] in
  let s0 = Combi.unrank_in ~base ~size:2 0 in
  check "first is two smallest" true (Pidset.equal s0 (Pidset.of_list [ 2; 5 ]));
  for r = 0 to Combi.binomial 4 2 - 1 do
    let s = Combi.unrank_in ~base ~size:2 r in
    check "subset of base" true (Pidset.subset s base);
    check_int "rank_in roundtrip" r (Combi.rank_in ~base s)
  done

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_lower_ring_total () =
  let r = Ring.Lower.create ~n:5 ~x:2 in
  check_int "total = C(5,2)*2" 20 (Ring.Lower.total r)

let test_lower_ring_decode_start () =
  let r = Ring.Lower.create ~n:5 ~x:2 in
  let l, x = Ring.Lower.decode r (Ring.Lower.start r) in
  check_int "first element" 0 l;
  check "first set" true (Pidset.equal x (Pidset.of_list [ 0; 1 ]))

let test_lower_ring_element_in_set () =
  let r = Ring.Lower.create ~n:6 ~x:3 in
  for p = 0 to Ring.Lower.total r - 1 do
    let l, x = Ring.Lower.decode r p in
    check "element in set" true (Pidset.mem l x);
    check_int "set size" 3 (Pidset.cardinal x)
  done

let test_lower_ring_wraps () =
  let r = Ring.Lower.create ~n:4 ~x:2 in
  let total = Ring.Lower.total r in
  let rec advance p k = if k = 0 then p else advance (Ring.Lower.next r p) (k - 1) in
  check_int "full cycle returns" (Ring.Lower.start r) (advance (Ring.Lower.start r) total)

let test_lower_ring_covers_all_pairs () =
  let r = Ring.Lower.create ~n:5 ~x:2 in
  let seen = Hashtbl.create 32 in
  for p = 0 to Ring.Lower.total r - 1 do
    Hashtbl.replace seen (Ring.Lower.decode r p) ()
  done;
  check_int "all pairs distinct" (Ring.Lower.total r) (Hashtbl.length seen)

let test_lower_ring_x_elements_consecutive () =
  (* Positions k*x .. k*x + x - 1 share the same set. *)
  let r = Ring.Lower.create ~n:6 ~x:3 in
  for k = 0 to Combi.binomial 6 3 - 1 do
    let _, x0 = Ring.Lower.decode r (k * 3) in
    for j = 1 to 2 do
      let _, xj = Ring.Lower.decode r ((k * 3) + j) in
      check "same set within block" true (Pidset.equal x0 xj)
    done
  done

let test_upper_ring_total () =
  let r = Ring.Upper.create ~n:5 ~ysize:3 ~lsize:2 in
  check_int "total = C(5,3)*C(3,2)" 30 (Ring.Upper.total r)

let test_upper_ring_l_subset_y () =
  let r = Ring.Upper.create ~n:6 ~ysize:3 ~lsize:2 in
  for p = 0 to Ring.Upper.total r - 1 do
    let l, y = Ring.Upper.decode r p in
    check "L subset Y" true (Pidset.subset l y);
    check_int "L size" 2 (Pidset.cardinal l);
    check_int "Y size" 3 (Pidset.cardinal y)
  done

let test_upper_ring_covers_all () =
  let r = Ring.Upper.create ~n:5 ~ysize:3 ~lsize:1 in
  let seen = Hashtbl.create 64 in
  for p = 0 to Ring.Upper.total r - 1 do
    Hashtbl.replace seen (Ring.Upper.decode r p) ()
  done;
  check_int "distinct pairs" (Ring.Upper.total r) (Hashtbl.length seen)

let test_upper_ring_wraps () =
  let r = Ring.Upper.create ~n:4 ~ysize:2 ~lsize:1 in
  let total = Ring.Upper.total r in
  let rec advance p k = if k = 0 then p else advance (Ring.Upper.next r p) (k - 1) in
  check_int "full cycle" (Ring.Upper.start r) (advance (Ring.Upper.start r) total)

let test_ring_bad_args () =
  check "lower bad x" true
    (try ignore (Ring.Lower.create ~n:3 ~x:4); false with Invalid_argument _ -> true);
  check "upper bad lsize" true
    (try ignore (Ring.Upper.create ~n:4 ~ysize:2 ~lsize:3); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Greedy ring consumption (the wheels' T2 discipline)                 *)
(* ------------------------------------------------------------------ *)

(* Pure model of the move-message consumer: buffer each message until the
   current position matches, then advance (possibly repeatedly).  The
   wheels rely on the reached position being independent of arrival order —
   all correct processes R-deliver the same multiset — so confluence IS the
   agreement property of the transformation's control state. *)
let greedy_consume ~total ~start arrivals =
  let pending = Hashtbl.create 16 in
  let pos = ref start in
  let bump p delta =
    let c = Option.value ~default:0 (Hashtbl.find_opt pending p) in
    Hashtbl.replace pending p (c + delta)
  in
  let rec drain () =
    match Hashtbl.find_opt pending !pos with
    | Some c when c > 0 ->
        bump !pos (-1);
        pos := (!pos + 1) mod total;
        drain ()
    | _ -> ()
  in
  List.iter
    (fun p ->
      bump p 1;
      drain ())
    arrivals;
  (!pos, Hashtbl.fold (fun _ c acc -> acc + max 0 c) pending 0)

let ring_confluence_qcheck =
  let gen =
    QCheck.Gen.(
      let* total = int_range 3 12 in
      let* start = int_bound (total - 1) in
      let* msgs = list_size (int_bound 20) (int_bound (total - 1)) in
      let* perm_seed = int_bound 1_000_000 in
      return (total, start, msgs, perm_seed))
  in
  QCheck.Test.make ~name:"greedy consumption is arrival-order independent" ~count:500
    (QCheck.make
       ~print:(fun (total, start, msgs, _) ->
         Printf.sprintf "total=%d start=%d msgs=[%s]" total start
           (String.concat ";" (List.map string_of_int msgs)))
       gen)
    (fun (total, start, msgs, perm_seed) ->
      let rng = Rng.create perm_seed in
      let shuffled = Rng.shuffle rng msgs in
      greedy_consume ~total ~start msgs = greedy_consume ~total ~start shuffled)

let test_greedy_consume_basics () =
  (* Matching message advances; non-matching waits; wrap-around consumes
     buffered ones. *)
  check "no msgs" true (greedy_consume ~total:5 ~start:2 [] = (2, 0));
  check "one match" true (greedy_consume ~total:5 ~start:2 [ 2 ] = (3, 0));
  check "one miss buffered" true (greedy_consume ~total:5 ~start:2 [ 4 ] = (2, 1));
  check "chain" true (greedy_consume ~total:5 ~start:2 [ 3; 2 ] = (4, 0));
  check "wrap" true (greedy_consume ~total:3 ~start:0 [ 0; 1; 2 ] = (0, 0))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.max;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.p50;
  Alcotest.(check (float 1e-9)) "p95" 5.0 s.p95;
  Alcotest.(check int) "count" 5 s.count;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.stddev

let test_stats_singleton_and_empty () =
  let s = Stats.summarize [ 7.0 ] in
  Alcotest.(check (float 1e-9)) "single mean" 7.0 s.mean;
  Alcotest.(check (float 1e-9)) "single stddev" 0.0 s.stddev;
  check "empty raises" true
    (try
       ignore (Stats.summarize []);
       false
     with Invalid_argument _ -> true)

let test_stats_percentile_unsorted_input () =
  Alcotest.(check (float 1e-9)) "p50 of shuffled" 3.0
    (Stats.percentile [ 5.0; 1.0; 3.0; 2.0; 4.0 ] 0.5);
  Alcotest.(check (float 1e-9)) "p0 clamps to min" 1.0
    (Stats.percentile [ 5.0; 1.0; 3.0 ] 0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 5.0
    (Stats.percentile [ 5.0; 1.0; 3.0 ] 1.0)

let test_stats_pp () =
  let s = Stats.summarize [ 1.0; 2.0 ] in
  check "renders" true (String.length (Format.asprintf "%a" Stats.pp_summary s) > 10)

let test_stats_summarize_opt () =
  Alcotest.(check bool) "empty is None" true (Stats.summarize_opt [] = None);
  match Stats.summarize_opt [ 2.0; 4.0 ] with
  | None -> Alcotest.fail "non-empty must be Some"
  | Some s ->
      Alcotest.(check (float 1e-9)) "agrees with summarize" (Stats.summarize [ 2.0; 4.0 ]).mean s.mean;
      Alcotest.(check int) "count" 2 s.count

let stats_qcheck =
  let samples =
    QCheck.make
      ~print:(fun l -> String.concat ";" (List.map string_of_float l))
      QCheck.Gen.(list_size (int_range 1 40) (float_bound_inclusive 1000.0))
  in
  let p_gen = QCheck.make ~print:string_of_float QCheck.Gen.(float_bound_inclusive 1.0) in
  [
    QCheck.Test.make ~name:"percentile monotone in p" ~count:300
      (QCheck.triple samples p_gen p_gen)
      (fun (xs, p1, p2) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Stats.percentile xs lo <= Stats.percentile xs hi);
    QCheck.Test.make ~name:"percentile bounded by min/max" ~count:300
      (QCheck.pair samples p_gen)
      (fun (xs, p) ->
        let v = Stats.percentile xs p in
        let lo = List.fold_left Float.min Float.infinity xs in
        let hi = List.fold_left Float.max Float.neg_infinity xs in
        lo <= v && v <= hi);
    QCheck.Test.make ~name:"summarize_opt total on any list" ~count:300
      (QCheck.make QCheck.Gen.(list_size (int_bound 10) (float_bound_inclusive 5.0)))
      (fun xs ->
        match Stats.summarize_opt xs with
        | None -> xs = []
        | Some s -> s.Stats.count = List.length xs);
  ]

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_escaping () =
  Alcotest.(check string) "quotes and backslash" {|"a\"b\\c"|}
    (Json.to_string (Json.String {|a"b\c|}));
  Alcotest.(check string) "newline tab" {|"x\ny\tz"|}
    (Json.to_string (Json.String "x\ny\tz"));
  Alcotest.(check string) "control char" {|"\u0001"|} (Json.to_string (Json.String "\x01"));
  Alcotest.(check string) "escape exposed" {|\u0000|} (Json.escape "\x00")

let test_json_floats () =
  Alcotest.(check string) "whole float gets .0" "3.0" (Json.to_string (Json.Float 3.0));
  Alcotest.(check string) "fraction" "0.1" (Json.to_string (Json.Float 0.1));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_parse () =
  let j = Json.of_string_exn {| {"a": [1, 2.5, true, null], "bA": "x\n"} |} in
  check "member a" true
    (Json.member "a" j
    = Some (Json.List [ Json.Int 1; Json.Float 2.5; Json.Bool true; Json.Null ]));
  check "unicode key" true (Json.member "bA" j = Some (Json.String "x\n"));
  check "missing member" true (Json.member "zzz" j = None);
  check "reject garbage" true
    (match Json.of_string "{oops}" with Error _ -> true | Ok _ -> false);
  check "reject trailing" true
    (match Json.of_string "1 2" with Error _ -> true | Ok _ -> false)

let test_json_to_float_opt () =
  check "float" true (Json.to_float_opt (Json.Float 2.5) = Some 2.5);
  check "int coerces" true (Json.to_float_opt (Json.Int 3) = Some 3.0);
  check "string no" true (Json.to_float_opt (Json.String "3") = None)

let json_qcheck =
  (* Random finite Json values must survive print-then-parse, both pretty
     and minified. *)
  let gen_json =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000);
                map (fun f -> Json.Float f) (float_range (-1e6) 1e6);
                map (fun s -> Json.String s) (string_size ~gen:char (int_bound 12));
              ]
          in
          if n <= 0 then leaf
          else
            frequency
              [
                (3, leaf);
                (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
                ( 1,
                  map
                    (fun kvs -> Json.Obj kvs)
                    (list_size (int_bound 4)
                       (pair (string_size ~gen:printable (int_bound 6)) (self (n / 2)))) );
              ]))
  in
  let arb = QCheck.make ~print:Json.to_string gen_json in
  [
    QCheck.Test.make ~name:"json pretty roundtrip" ~count:300 arb (fun j ->
        Json.equal j (Json.of_string_exn (Json.to_string j)));
    QCheck.Test.make ~name:"json minified roundtrip" ~count:300 arb (fun j ->
        Json.equal j (Json.of_string_exn (Json.to_string ~minify:true j)));
  ]

(* ------------------------------------------------------------------ *)
(* Json.parse_prefix and the newline-delimited Stream decoder (the      *)
(* serve wire format)                                                   *)
(* ------------------------------------------------------------------ *)

let test_json_parse_prefix () =
  (match Json.parse_prefix "{\"a\":1}trailing" with
  | Ok (v, stop) ->
      check "value" true (Json.member "a" v = Some (Json.Int 1));
      check_int "stop one past the value" 7 stop
  | Error e -> Alcotest.failf "parse_prefix: %s" (Json.error_to_string e));
  (match Json.parse_prefix ~pos:3 "xxx42,rest" with
  | Ok (v, stop) ->
      check "pos respected" true (v = Json.Int 42);
      check_int "stop before comma" 5 stop
  | Error e -> Alcotest.failf "parse_prefix ~pos: %s" (Json.error_to_string e));
  (match Json.parse_prefix "{\"a\": [1," with
  | Ok _ -> Alcotest.fail "truncated value accepted"
  | Error e -> check "truncation flagged incomplete" true e.Json.incomplete);
  match Json.parse_prefix "{oops}" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e -> check "malformed is not incomplete" false e.Json.incomplete

let stream_frames = [ "{\"op\":\"ping\"}"; "[1,2,3]"; "{\"n\":7,\"s\":\"x\"}" ]

let test_stream_byte_at_a_time () =
  let d = Json.Stream.decoder () in
  let wire = String.concat "" (List.map (fun f -> f ^ "\n") stream_frames) in
  let got = ref [] in
  String.iter
    (fun c ->
      Json.Stream.feed d (String.make 1 c);
      match Json.Stream.next d with
      | `Value v -> got := v :: !got
      | `Await -> ()
      | `Error e -> Alcotest.failf "stream: %s" (Json.error_to_string e))
    wire;
  let got = List.rev !got in
  check_int "all frames decoded" (List.length stream_frames) (List.length got);
  List.iter2
    (fun frame v -> check "frame survives re-chunking" true (Json.equal (Json.of_string_exn frame) v))
    stream_frames got;
  check_int "cursor consumed everything" (String.length wire) (Json.Stream.consumed d);
  check_int "nothing pending" 0 (Json.Stream.pending d)

let test_stream_error_recovery_and_offsets () =
  (* A malformed line is consumed and reported with its absolute offset;
     decoding resumes on the next line. *)
  let d = Json.Stream.decoder () in
  Json.Stream.feed d "{\"ok\":1}\n{bad}\n{\"ok\":2}\n";
  (match Json.Stream.next d with
  | `Value v -> check "first frame" true (Json.member "ok" v = Some (Json.Int 1))
  | _ -> Alcotest.fail "expected first frame");
  (match Json.Stream.next d with
  | `Error e ->
      check "absolute offset inside bad line" true (e.Json.offset >= 9 && e.Json.offset < 14);
      check "bad line is not incomplete" false e.Json.incomplete
  | _ -> Alcotest.fail "expected an error frame");
  (match Json.Stream.next d with
  | `Value v -> check "recovered after error" true (Json.member "ok" v = Some (Json.Int 2))
  | _ -> Alcotest.fail "expected recovery");
  check "drained" true (Json.Stream.next d = `Await)

let test_stream_partial_frame_held () =
  let d = Json.Stream.decoder () in
  Json.Stream.feed d "{\"a\":";
  check "partial frame awaits" true (Json.Stream.next d = `Await);
  check "partial bytes pending" true (Json.Stream.pending d > 0);
  Json.Stream.feed d "1}\n";
  (match Json.Stream.next d with
  | `Value v -> check "completed across feeds" true (Json.member "a" v = Some (Json.Int 1))
  | _ -> Alcotest.fail "expected completed frame");
  check_int "pending drained" 0 (Json.Stream.pending d)

let stream_qcheck =
  (* Any frame sequence survives any re-chunking of the byte stream. *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (1 -- 8)
           (oneofl
              [
                Json.Obj [ ("k", Json.Int 1) ];
                Json.List [ Json.Bool true; Json.Null ];
                Json.String "line\nbreak";
                Json.Int (-3);
                Json.Obj [ ("nested", Json.Obj [ ("x", Json.List [ Json.Int 9 ]) ]) ];
              ]))
        (int_range 1 1_000_000))
  in
  let print (frames, seed) =
    Printf.sprintf "seed=%d frames=%s" seed
      (String.concat " | " (List.map (Json.to_string ~minify:true) frames))
  in
  QCheck.Test.make ~count:500 ~name:"stream decodes under random chunking"
    (QCheck.make ~print gen)
    (fun (frames, seed) ->
      let wire =
        String.concat "" (List.map (fun f -> Json.to_string ~minify:true f ^ "\n") frames)
      in
      let rng = Rng.create seed in
      let d = Json.Stream.decoder () in
      let got = ref [] in
      let rec drain () =
        match Json.Stream.next d with
        | `Value v ->
            got := v :: !got;
            drain ()
        | `Await -> ()
        | `Error e -> QCheck.Test.fail_reportf "stream: %s" (Json.error_to_string e)
      in
      let pos = ref 0 in
      let n = String.length wire in
      while !pos < n do
        let len = 1 + Rng.int rng (min 7 (n - !pos)) in
        Json.Stream.feed d (String.sub wire !pos len);
        pos := !pos + len;
        drain ()
      done;
      let got = List.rev !got in
      List.length got = List.length frames
      && List.for_all2 Json.equal frames got
      && Json.Stream.pending d = 0)

(* Pid *)
let test_pid () =
  Alcotest.(check string) "to_string" "p3" (Pid.to_string 2);
  Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Pid.all ~n:3);
  check "equal" true (Pid.equal 1 1);
  check_int "compare" 0 (Pid.compare 4 4)

(* Pidset beyond one machine word: the n=64/128 scaling sweeps need sets
   over universes larger than Sys.int_size - 1. *)
let test_pidset_large_universe () =
  List.iter
    (fun n ->
      let full = Pidset.full ~n in
      check_int "full cardinal" n (Pidset.cardinal full);
      check "last member present" true (Pidset.mem (n - 1) full);
      check "one past absent" false (Pidset.mem n full);
      let evens = Pidset.of_list (List.init (n / 2) (fun i -> 2 * i)) in
      let odds = Pidset.diff full evens in
      check_int "split cardinals" n (Pidset.cardinal evens + Pidset.cardinal odds);
      check "disjoint halves" true (Pidset.disjoint evens odds);
      check "union restores" true (Pidset.equal full (Pidset.union evens odds));
      check_int "min" 0 (Pidset.min_elt full);
      Alcotest.(check (list int)) "to_list sorted"
        (List.init n Fun.id) (Pidset.to_list full))
    [ 63; 64; 65; 128; 200 ]

let test_pidset_large_equal_hash_canonical () =
  (* Sets built by different operation orders must compare and hash equal
     (canonical representation across word boundaries). *)
  let a = Pidset.add 100 (Pidset.singleton 3) in
  let b = Pidset.remove 70 (Pidset.of_list [ 3; 70; 100 ]) in
  check "equal across build paths" true (Pidset.equal a b);
  check_int "compare 0" 0 (Pidset.compare a b);
  check_int "same hash" (Pidset.hash a) (Pidset.hash b);
  (* Dropping the only high member must shrink back to a small-set value
     that equals a set never containing it. *)
  let c = Pidset.remove 100 a in
  check "trimmed" true (Pidset.equal c (Pidset.singleton 3));
  check_int "trimmed hash" (Pidset.hash (Pidset.singleton 3)) (Pidset.hash c)

(* Vec *)
let test_vec_basics () =
  let v : int Vec.t = Vec.create () in
  check_int "empty" 0 (Vec.length v);
  for i = 1 to 100 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get first" 1 (Vec.get v 0);
  check_int "get last" 100 (Vec.get v 99);
  Alcotest.(check (list int)) "to_list in append order" (List.init 100 (fun i -> i + 1))
    (Vec.to_list v);
  check_int "fold" 5050 (Vec.fold_left ( + ) 0 v);
  let seen = ref 0 in
  Vec.iter (fun _ -> incr seen) v;
  check_int "iter visits all" 100 !seen

let test_vec_list_from () =
  let v : int Vec.t = Vec.create () in
  for i = 1 to 10 do
    Vec.push v i
  done;
  Alcotest.(check (list int)) "suffix" [ 8; 9; 10 ] (Vec.list_from v ~cursor:7);
  Alcotest.(check (list int)) "whole" (List.init 10 (fun i -> i + 1)) (Vec.list_from v ~cursor:0);
  Alcotest.(check (list int)) "at end" [] (Vec.list_from v ~cursor:10);
  Alcotest.(check (list int)) "past end" [] (Vec.list_from v ~cursor:42)

let test_vec_get_out_of_bounds () =
  let v : int Vec.t = Vec.create () in
  Vec.push v 1;
  check "oob rejected" true
    (try
       ignore (Vec.get v 1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Strutil: byte-level substring search                                 *)
(* ------------------------------------------------------------------ *)

let test_strutil_empty () =
  Alcotest.(check (option int)) "empty sub" (Some 0) (Strutil.find "" ~sub:"");
  Alcotest.(check (option int)) "empty sub in text" (Some 0) (Strutil.find "abc" ~sub:"");
  check "contains empty" true (Strutil.contains "" ~sub:"");
  Alcotest.(check (option int)) "sub longer than s" None (Strutil.find "ab" ~sub:"abc");
  check "not in empty" false (Strutil.contains "" ~sub:"x")

let test_strutil_overlap () =
  (* Self-overlapping needles: the scan must not skip past a match that
     starts inside a failed partial match. *)
  Alcotest.(check (option int)) "aa in aaa" (Some 0) (Strutil.find "aaa" ~sub:"aa");
  Alcotest.(check (option int)) "aba in aabaa" (Some 1) (Strutil.find "aabaa" ~sub:"aba");
  Alcotest.(check (option int)) "abc after partial ab" (Some 2) (Strutil.find "ababc" ~sub:"abc");
  check "whole string" true (Strutil.contains "needle" ~sub:"needle");
  check "suffix" true (Strutil.contains "find the needle" ~sub:"needle");
  check "near miss" false (Strutil.contains "nee dle" ~sub:"needle")

let test_strutil_unicode_bytes () =
  (* Byte semantics, not codepoints: multi-byte sequences match by their
     UTF-8 encoding, including partial-sequence needles. *)
  let s = "d\xc3\xa9cid\xc3\xa9" (* "décidé" *) in
  check "multibyte needle" true (Strutil.contains s ~sub:"\xc3\xa9");
  Alcotest.(check (option int)) "byte offset" (Some 1) (Strutil.find s ~sub:"\xc3\xa9");
  check "partial utf8 byte" true (Strutil.contains s ~sub:"\xc3");
  check "absent multibyte" false (Strutil.contains s ~sub:"\xc3\xa8")

let strutil_qcheck =
  let naive s sub =
    let n = String.length s and m = String.length sub in
    let rec at i = if i + m > n then false else String.sub s i m = sub || at (i + 1) in
    m = 0 || at 0
  in
  let printable = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (0 -- 8)) in
  [
    QCheck.Test.make ~count:2000 ~name:"contains agrees with naive scan"
      QCheck.(pair (make ~print:Print.string printable) (make ~print:Print.string printable))
      (fun (s, sub) -> Strutil.contains s ~sub = naive s sub);
    QCheck.Test.make ~count:2000 ~name:"find returns the leftmost match"
      QCheck.(pair (make ~print:Print.string printable) (make ~print:Print.string printable))
      (fun (s, sub) ->
        match Strutil.find s ~sub with
        | None -> not (naive s sub)
        | Some i ->
            let m = String.length sub in
            String.sub s i m = sub
            &&
            let rec earlier j = j < i && (String.sub s j m = sub || earlier (j + 1)) in
            not (earlier 0));
  ]

(* ------------------------------------------------------------------ *)
(* Journal: the crash-recovery write-ahead log                         *)
(* ------------------------------------------------------------------ *)

let journal_scratch name =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "setagree_journal_%s_%d.jsonl" name (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  path

let jentry i = Json.Obj [ ("type", Json.String "entry"); ("i", Json.Int i) ]
let is_meta e = Json.member "type" e = Some (Json.String "meta")

let test_journal_roundtrip () =
  let path = journal_scratch "roundtrip" in
  let t = Journal.append_open path in
  for i = 0 to 9 do
    Journal.append t (jentry i)
  done;
  Journal.close t;
  let { Journal.entries; dropped_lines; dropped_bytes } = Journal.load path in
  check_int "no garbage" 0 dropped_lines;
  check_int "no partial tail" 0 dropped_bytes;
  (match entries with
  | meta :: rest ->
      check "meta line first" true (is_meta meta);
      check_int "all entries back" 10 (List.length rest);
      List.iteri (fun i e -> check "entry intact" true (e = jentry i)) rest
  | [] -> Alcotest.fail "journal loaded empty");
  (* Reopening appends after the existing content — no second meta. *)
  let t = Journal.append_open path in
  Journal.append t (jentry 10);
  Journal.close t;
  let { Journal.entries; _ } = Journal.load path in
  check_int "append after reopen" 12 (List.length entries);
  check_int "single meta line" 1 (List.length (List.filter is_meta entries));
  Sys.remove path

let test_journal_missing_and_garbage () =
  let path = journal_scratch "garbage" in
  let l = Journal.load path in
  check_int "missing file loads empty" 0 (List.length l.Journal.entries);
  (* Mid-file garbage is skipped and counted; valid lines around it —
     including the suffix after the garbage — still load. *)
  let oc = open_out path in
  output_string oc (Json.to_string ~minify:true (jentry 0) ^ "\n");
  output_string oc "{\"broken\": \n";
  output_string oc "not json at all\n";
  output_string oc (Json.to_string ~minify:true (jentry 1) ^ "\n");
  close_out oc;
  let l = Journal.load path in
  check_int "two valid lines" 2 (List.length l.Journal.entries);
  check_int "two garbage lines dropped" 2 l.Journal.dropped_lines;
  check_int "no partial tail" 0 l.Journal.dropped_bytes;
  Sys.remove path

let test_journal_rewrite () =
  let path = journal_scratch "rewrite" in
  let t = Journal.append_open path in
  for i = 0 to 19 do
    Journal.append t (jentry i)
  done;
  Journal.close t;
  Journal.rewrite path [ jentry 100; jentry 101 ];
  let { Journal.entries; dropped_lines; dropped_bytes } = Journal.load path in
  check_int "no garbage" 0 dropped_lines;
  check_int "no partial tail" 0 dropped_bytes;
  (match entries with
  | [ meta; a; b ] ->
      check "meta line first" true (is_meta meta);
      check "compacted entries kept" true (a = jentry 100 && b = jentry 101)
  | _ -> Alcotest.fail "rewrite did not produce meta + 2 entries");
  Sys.remove path

(* The durability contract: truncating the file at ANY byte (what a
   crash mid-append leaves behind) yields a clean prefix of what was
   appended — no garbage lines, no exceptions, no reordering. *)
let journal_truncation_qcheck =
  QCheck.Test.make ~count:60 ~name:"Journal: any truncation loads as a prefix"
    QCheck.(
      make
        Gen.(pair (list_size (int_range 0 25) (int_range 0 999)) (int_range 0 max_int)))
    (fun (values, cutraw) ->
      let path = journal_scratch "qcheck" in
      let t = Journal.append_open ~fsync:false path in
      List.iter (fun i -> Journal.append t (jentry i)) values;
      Journal.close t;
      let size = (Unix.stat path).Unix.st_size in
      let cut = cutraw mod (size + 1) in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd cut;
      Unix.close fd;
      let l = Journal.load path in
      let expected = Journal.meta_entry () :: List.map jentry values in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
        | _ :: _, [] -> false
      in
      let ok =
        is_prefix l.Journal.entries expected
        && l.Journal.dropped_lines = 0
        && (cut < size || l.Journal.entries = expected)
        && l.Journal.dropped_bytes <= cut
      in
      Sys.remove path;
      ok)

let () =
  let qc = List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |])) pidset_qcheck in
  Alcotest.run "util"
    [
      ( "pidset",
        [
          Alcotest.test_case "empty" `Quick test_pidset_empty;
          Alcotest.test_case "add/remove" `Quick test_pidset_add_remove;
          Alcotest.test_case "full" `Quick test_pidset_full;
          Alcotest.test_case "set ops" `Quick test_pidset_ops;
          Alcotest.test_case "to_list sorted" `Quick test_pidset_to_list_sorted;
          Alcotest.test_case "min/max" `Quick test_pidset_min_max;
          Alcotest.test_case "iterators" `Quick test_pidset_iterators;
          Alcotest.test_case "random size" `Quick test_pidset_random_size;
          Alcotest.test_case "pp" `Quick test_pidset_pp;
          Alcotest.test_case "large universe" `Quick test_pidset_large_universe;
          Alcotest.test_case "canonical over words" `Quick test_pidset_large_equal_hash_canonical;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "list_from" `Quick test_vec_list_from;
          Alcotest.test_case "bounds" `Quick test_vec_get_out_of_bounds;
        ] );
      ( "strutil",
        [
          Alcotest.test_case "empty/degenerate" `Quick test_strutil_empty;
          Alcotest.test_case "overlap" `Quick test_strutil_overlap;
          Alcotest.test_case "unicode bytes" `Quick test_strutil_unicode_bytes;
        ]
        @ List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |])) strutil_qcheck );
      ("pidset-properties", qc);
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "split_named stable" `Quick test_rng_split_named_stable;
          Alcotest.test_case "copy stream" `Quick test_rng_split_named_order_independent;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "pick/shuffle" `Quick test_rng_pick_shuffle;
          Alcotest.test_case "uniform mean" `Quick test_rng_mean_sanity;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "basic" `Quick test_pqueue_basic;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "sorts" `Quick test_pqueue_sorts;
          Alcotest.test_case "tie-break" `Quick test_pqueue_stability_by_cmp;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 42 |])
            pqueue_sorted_qcheck;
        ] );
      ( "earena",
        [
          Alcotest.test_case "basic" `Quick test_earena_basic;
          Alcotest.test_case "tie = insertion order" `Quick test_earena_tie_insertion_order;
          Alcotest.test_case "cancel" `Quick test_earena_cancel;
          Alcotest.test_case "grow + recycle" `Quick test_earena_grow_and_recycle;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 42 |])
            earena_sorted_qcheck;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 42 |])
            earena_differential_qcheck;
        ] );
      ( "combi",
        [
          Alcotest.test_case "binomial values" `Quick test_binomial_values;
          Alcotest.test_case "pascal identity" `Quick test_binomial_pascal;
          Alcotest.test_case "unrank first/last" `Quick test_unrank_first_last;
          Alcotest.test_case "rank/unrank roundtrip" `Quick test_unrank_rank_roundtrip;
          Alcotest.test_case "unrank out of range" `Quick test_unrank_out_of_range;
          Alcotest.test_case "enumerate distinct" `Quick test_enumerate_all_distinct;
          Alcotest.test_case "enumerate lex" `Quick test_enumerate_lex_increasing;
          Alcotest.test_case "unrank_in base" `Quick test_unrank_in_base;
        ] );
      ( "ring",
        [
          Alcotest.test_case "lower total" `Quick test_lower_ring_total;
          Alcotest.test_case "lower start" `Quick test_lower_ring_decode_start;
          Alcotest.test_case "lower element-in-set" `Quick test_lower_ring_element_in_set;
          Alcotest.test_case "lower wraps" `Quick test_lower_ring_wraps;
          Alcotest.test_case "lower covers pairs" `Quick test_lower_ring_covers_all_pairs;
          Alcotest.test_case "lower blocks" `Quick test_lower_ring_x_elements_consecutive;
          Alcotest.test_case "upper total" `Quick test_upper_ring_total;
          Alcotest.test_case "upper L in Y" `Quick test_upper_ring_l_subset_y;
          Alcotest.test_case "upper covers" `Quick test_upper_ring_covers_all;
          Alcotest.test_case "upper wraps" `Quick test_upper_ring_wraps;
          Alcotest.test_case "bad args" `Quick test_ring_bad_args;
        ] );
      ("pid", [ Alcotest.test_case "basics" `Quick test_pid ]);
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "singleton/empty" `Quick test_stats_singleton_and_empty;
          Alcotest.test_case "percentile" `Quick test_stats_percentile_unsorted_input;
          Alcotest.test_case "pp" `Quick test_stats_pp;
          Alcotest.test_case "summarize_opt" `Quick test_stats_summarize_opt;
        ] );
      ( "stats-properties",
        List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |])) stats_qcheck );
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "to_float_opt" `Quick test_json_to_float_opt;
        ] );
      ( "json-properties",
        List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |])) json_qcheck );
      ( "json-stream",
        [
          Alcotest.test_case "parse_prefix" `Quick test_json_parse_prefix;
          Alcotest.test_case "byte-at-a-time" `Quick test_stream_byte_at_a_time;
          Alcotest.test_case "error recovery + offsets" `Quick
            test_stream_error_recovery_and_offsets;
          Alcotest.test_case "partial frame held" `Quick test_stream_partial_frame_held;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 42 |])
            stream_qcheck;
        ] );
      ( "greedy-consumption",
        Alcotest.test_case "basics" `Quick test_greedy_consume_basics
        :: List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |])) [ ring_confluence_qcheck ] );
      ( "journal",
        [
          Alcotest.test_case "append/load roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "missing file + garbage lines" `Quick
            test_journal_missing_and_garbage;
          Alcotest.test_case "compacting rewrite" `Quick test_journal_rewrite;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 42 |])
            journal_truncation_qcheck;
        ] );
    ]
