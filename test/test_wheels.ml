(* Tests for the two-wheels transformation (paper §4): the lower wheel's
   contract (Theorem 7) and quiescence (Corollary 1), the upper wheel's
   l_move finiteness (Corollary 2), the assembled ◇S_x + ◇φ_y → Ω_z
   construction over the admissible (x, y) range, the special cases y = 0
   and x = 1 (Corollaries 6-7), and end-to-end composition with k-set
   agreement (grid row E1). *)

open Setagree_util
open Setagree_dsys
open Setagree_fd
open Setagree_core

let check = Alcotest.(check bool)
let gst = 30.0

let setup ?(n = 6) ?(t = 2) ?(horizon = 250.0) ?(crashes = 0) ?(crash_window = (0.0, 15.0))
    ~seed () =
  let sim = Sim.create ~horizon ~n ~t ~seed () in
  let rng = Rng.split_named (Sim.rng sim) "crash" in
  Sim.install_crashes sim
    (Crash.generate (Crash.Exactly { crashes; window = crash_window }) ~n ~t rng);
  sim

(* --- lower wheel --- *)

let run_lower ?(n = 6) ?(t = 2) ?(x = 2) ?(crashes = 0) ~seed () =
  let sim = setup ~n ~t ~crashes ~seed () in
  let suspector, info = Oracle.es_x sim ~x ~behavior:(Behavior.stormy ~gst) () in
  let lw = Wheels_lower.install sim ~suspector ~x () in
  let _ = Sim.run sim in
  (sim, lw, info)

let check_theorem7 sim lw ~x label =
  (* There is a set X of x processes such that (a) every process outside X
     has repr = self, and (b) either all of X crashed and its live... — per
     Theorem 7: if X ∩ C = ∅, live processes all have repr = self; otherwise
     the correct members of X share a correct representative in X. *)
  let correct = Sim.correct_set sim in
  let candidates =
    List.filter
      (fun i -> not (Sim.is_crashed sim i))
      (Pid.all ~n:(Sim.n sim))
  in
  (* All correct processes must have stabilized on the same ring pair. *)
  let pairs = List.map (fun i -> Wheels_lower.current_pair lw i) (Pidset.to_list correct) in
  (match pairs with
  | [] -> Alcotest.fail "no correct process"
  | (l0, x0) :: rest ->
      List.iter
        (fun (l, xs) ->
          check (label ^ ": same pair") true (l = l0 && Pidset.equal xs x0))
        rest;
      check (label ^ ": |X| = x") true (Pidset.cardinal x0 = x);
      let xset = x0 and lx = l0 in
      List.iter
        (fun i ->
          let r = Wheels_lower.repr lw i in
          if Pidset.mem i xset then begin
            if Pidset.is_empty (Pidset.inter xset correct) then
              check (label ^ ": dead X, self repr") true (r = i)
            else begin
              check (label ^ ": member repr = lx") true (r = lx);
              check (label ^ ": lx correct") true (Pidset.mem lx correct)
            end
          end
          else check (label ^ ": outsider repr = self") true (r = i))
        candidates)

let test_lower_stabilizes_no_crash () =
  let sim, lw, _ = run_lower ~seed:1 () in
  check_theorem7 sim lw ~x:2 "no crash";
  check "quiescent well before the end" true (Wheels_lower.last_pos_change lw < 200.0)

let test_lower_stabilizes_with_crashes () =
  for seed = 2 to 6 do
    let sim, lw, _ = run_lower ~seed ~crashes:2 () in
    check_theorem7 sim lw ~x:2 (Printf.sprintf "seed %d" seed)
  done

let test_lower_x_variants () =
  List.iter
    (fun x ->
      let sim, lw, _ = run_lower ~seed:7 ~x ~crashes:1 () in
      check_theorem7 sim lw ~x (Printf.sprintf "x=%d" x))
    [ 1; 2; 3 ]

let test_lower_quiescence () =
  (* Corollary 1: x_move broadcasts stop.  Run once to 150, snapshot the
     count, run the same seed to 300: counts must match (all movement
     happened early). *)
  let moves_at horizon =
    let sim = setup ~horizon ~crashes:2 ~seed:8 () in
    let suspector, _ = Oracle.es_x sim ~x:2 ~behavior:(Behavior.stormy ~gst) () in
    let lw = Wheels_lower.install sim ~suspector ~x:2 () in
    let _ = Sim.run sim in
    Wheels_lower.moves_broadcast lw
  in
  Alcotest.(check int) "no x_moves after stabilization" (moves_at 150.0) (moves_at 300.0)

let test_lower_all_x_crashed_case () =
  (* Force the protected set's complement: crash two specific processes and
     use a calm oracle; the wheel can stop on a fully-crashed X only if the
     ring reaches it, but Theorem 7 must hold either way.  Use explicit
     initial crashes of {p0, p1} = the ring's first X. *)
  let sim = Sim.create ~horizon:250.0 ~n:6 ~t:2 ~seed:9 () in
  Sim.install_crashes sim [ (0, 0.0); (1, 0.0) ];
  let suspector, _ = Oracle.es_x sim ~x:2 ~behavior:(Behavior.calm ~gst) () in
  let lw = Wheels_lower.install sim ~suspector ~x:2 () in
  let _ = Sim.run sim in
  check_theorem7 sim lw ~x:2 "initial X dead"

let test_lower_repr_readable_anytime () =
  let sim = setup ~crashes:1 ~seed:10 () in
  let suspector, _ = Oracle.es_x sim ~x:2 ~behavior:(Behavior.stormy ~gst) () in
  let lw = Wheels_lower.install sim ~suspector ~x:2 () in
  (* Sample repr mid-run: must always be a valid pid. *)
  Sim.at sim ~time:10.0 (fun () ->
      for i = 0 to 5 do
        let r = Wheels_lower.repr lw i in
        check "repr in range" true (r >= 0 && r < 6)
      done);
  ignore (Sim.run sim)

(* --- assembled wheels --- *)

let run_wheels ?(n = 6) ?(t = 2) ?(horizon = 300.0) ~x ~y ?(crashes = 0)
    ?(behavior = Behavior.stormy ~gst) ~seed () =
  let sim = setup ~n ~t ~horizon ~crashes ~seed () in
  let suspector, _ = Oracle.es_x sim ~x ~behavior () in
  let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
  let w = Wheels.install sim ~suspector ~querier ~x ~y () in
  let omega = Wheels.omega w in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
  let _ = Sim.run sim in
  (sim, w, mon)

let assert_omega sim w mon label =
  let horizon = Sim.horizon sim in
  let v = Check.omega_z sim ~z:(Wheels.z w) ~deadline:(horizon -. 60.0) mon in
  if not (Check.verdict_ok v) then
    Alcotest.failf "%s: %s" label (String.concat "; " v.notes)

let test_wheels_admissible_pairs () =
  (* Every admissible (x, y) for n=6, t=2 produces a certified Ω_z. *)
  let t = 2 in
  List.iter
    (fun (x, y) ->
      if Bounds.wheels_admissible ~n:6 ~t ~x ~y then begin
        let sim, w, mon = run_wheels ~x ~y ~crashes:1 ~seed:(100 + (10 * x) + y) () in
        Alcotest.(check int)
          (Printf.sprintf "z value x=%d y=%d" x y)
          (Bounds.z_of_addition ~t ~x ~y)
          (Wheels.z w);
        assert_omega sim w mon (Printf.sprintf "x=%d y=%d" x y)
      end)
    [ (1, 0); (1, 1); (1, 2); (2, 0); (2, 1); (3, 0) ]

let test_wheels_headline_consensus_power () =
  (* x = t, y = 1 -> z = 1: the paper's headline addition. *)
  let sim, w, mon = run_wheels ~x:2 ~y:1 ~crashes:2 ~seed:42 () in
  Alcotest.(check int) "z = 1" 1 (Wheels.z w);
  assert_omega sim w mon "headline"

let test_wheels_inadmissible_rejected () =
  let sim = setup ~seed:1 () in
  let suspector, _ = Oracle.es_x sim ~x:3 () in
  let querier, _ = Oracle.ephi_y sim ~y:2 () in
  check "x+y > t+1 rejected" true
    (try
       ignore (Wheels.install sim ~suspector ~querier ~x:3 ~y:2 ());
       false
     with Invalid_argument _ -> true)

let test_wheels_lmove_finite () =
  (* Corollary 2: l_move broadcasts stop. *)
  let lmoves_at horizon =
    let sim = setup ~horizon ~crashes:1 ~seed:11 () in
    let suspector, _ = Oracle.es_x sim ~x:2 ~behavior:(Behavior.stormy ~gst) () in
    let querier, _ = Oracle.ephi_y sim ~y:0 ~behavior:(Behavior.stormy ~gst) () in
    let w = Wheels.install sim ~suspector ~querier ~x:2 ~y:0 () in
    let _ = Sim.run sim in
    Wheels_upper.moves_broadcast (Wheels.upper w)
  in
  Alcotest.(check int) "l_moves stop" (lmoves_at 200.0) (lmoves_at 350.0)

let test_wheels_inquiry_never_stops () =
  (* §4.2.2 Remark: the upper wheel is not quiescent — inquiry/response
     traffic continues after stabilization. *)
  let msgs_at horizon =
    let sim = setup ~horizon ~seed:12 () in
    let suspector, _ = Oracle.es_x sim ~x:2 ~behavior:(Behavior.calm ~gst:0.0) () in
    let querier, _ = Oracle.ephi_y sim ~y:0 ~behavior:(Behavior.calm ~gst:0.0) () in
    let w = Wheels.install sim ~suspector ~querier ~x:2 ~y:0 () in
    let _ = Sim.run sim in
    Wheels_upper.underlying_sent (Wheels.upper w)
  in
  check "traffic keeps growing" true (msgs_at 300.0 > msgs_at 150.0)

let test_wheels_calm_stabilizes_fast () =
  let sim, w, mon = run_wheels ~behavior:Behavior.perfect ~x:2 ~y:1 ~seed:13 () in
  assert_omega sim w mon "perfect behaviour";
  check "stabilized early" true (Wheels.stabilized_since w < 50.0)

let test_wheels_composed_with_kset () =
  (* Grid row end-to-end: wheels build Ω_z, Figure 3 solves z-set agreement
     on top, all inside one simulation. *)
  List.iter
    (fun (x, y, seed) ->
      let t = 2 and n = 6 in
      let sim = setup ~n ~t ~horizon:600.0 ~crashes:1 ~seed () in
      let behavior = Behavior.stormy ~gst in
      let suspector, _ = Oracle.es_x sim ~x ~behavior () in
      let querier, _ = Oracle.ephi_y sim ~y ~behavior () in
      let w = Wheels.install sim ~suspector ~querier ~x ~y () in
      let proposals = Array.init n (fun i -> 100 + i) in
      let h = Reduce.solve_kset sim ~omega:(Wheels.omega w) ~proposals () in
      let _ = Sim.run ~stop_when:(fun () -> Kset.all_correct_decided h) sim in
      let v =
        Check.k_set_agreement sim ~k:(Wheels.z w) ~proposals ~decisions:(Kset.decisions h)
      in
      if not (Check.verdict_ok v) then
        Alcotest.failf "x=%d y=%d: %s" x y (String.concat "; " v.notes))
    [ (2, 1, 201); (2, 0, 202); (1, 1, 203) ]

(* --- single-class reductions (Corollaries 6-7) --- *)

let test_reduce_es_alone () =
  let sim = setup ~horizon:300.0 ~crashes:1 ~seed:14 () in
  let suspector, _ = Oracle.es_x sim ~x:2 ~behavior:(Behavior.stormy ~gst) () in
  let w = Reduce.omega_from_es sim ~suspector ~x:2 () in
  Alcotest.(check int) "z = t+2-x" 2 (Wheels.z w);
  let omega = Wheels.omega w in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
  let _ = Sim.run sim in
  assert_omega sim w mon "◇S_x alone"

let test_reduce_phi_alone () =
  let sim = setup ~horizon:300.0 ~crashes:2 ~seed:15 () in
  let querier, _ = Oracle.ephi_y sim ~y:1 ~behavior:(Behavior.stormy ~gst) () in
  let w = Reduce.omega_from_phi sim ~querier ~y:1 () in
  Alcotest.(check int) "z = t+1-y" 2 (Wheels.z w);
  let omega = Wheels.omega w in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
  let _ = Sim.run sim in
  assert_omega sim w mon "◇φ_y alone"

let test_wheels_determinism () =
  let observe () =
    let sim, w, _ = run_wheels ~x:2 ~y:1 ~crashes:2 ~seed:16 () in
    ( Wheels.total_messages w,
      List.init 6 (fun i ->
          if Sim.is_crashed sim i then (-1, Pidset.empty)
          else (Wheels_upper.position (Wheels.upper w) i, (Wheels.omega w).Iface.trusted i)) )
  in
  check "identical replay" true (observe () = observe ())

let test_wheels_restabilize_after_late_crash () =
  (* A process crashes long after both wheels have stabilized; the rings
     must recover (or legally keep their sets) and the Omega_z certificate
     must hold on the new suffix. *)
  let horizon = 800.0 in
  let sim = Sim.create ~horizon ~n:6 ~t:2 ~seed:61 () in
  Sim.install_crashes sim [ (1, 5.0); (0, 300.0) ];
  let behavior = Behavior.stormy ~gst in
  let suspector, _ = Oracle.es_x sim ~x:2 ~behavior () in
  let querier, _ = Oracle.ephi_y sim ~y:1 ~behavior () in
  let w = Wheels.install sim ~suspector ~querier ~x:2 ~y:1 () in
  let omega = Wheels.omega w in
  let mon = Monitor.watch sim ~every:0.5 ~read:(fun i -> omega.Iface.trusted i) () in
  ignore (Sim.run sim);
  assert_omega sim w mon "late crash"

let qcheck_wheels_random_configs =
  (* Randomized end-to-end: any admissible (x, y), any small crash load,
     any seed — the construction must certify as Omega_z. *)
  QCheck.Test.make ~name:"random admissible config certifies Omega_z" ~count:8
    (QCheck.make
       ~print:(fun (x, y, crashes, seed) ->
         Printf.sprintf "x=%d y=%d crashes=%d seed=%d" x y crashes seed)
       QCheck.Gen.(
         let* x = int_range 1 3 in
         let* y = int_range 0 (3 - x) in
         let* crashes = int_bound 2 in
         let* seed = int_range 1 100_000 in
         return (x, y, crashes, seed)))
    (fun (x, y, crashes, seed) ->
      if not (Bounds.wheels_admissible ~n:6 ~t:2 ~x ~y) then true
      else begin
        let sim, w, mon = run_wheels ~x ~y ~crashes ~seed () in
        Check.verdict_ok (Check.omega_z sim ~z:(Wheels.z w) ~deadline:240.0 mon)
      end)

let () =
  Alcotest.run "wheels"
    [
      ( "lower",
        [
          Alcotest.test_case "theorem 7 (no crash)" `Quick test_lower_stabilizes_no_crash;
          Alcotest.test_case "theorem 7 (crashes)" `Quick test_lower_stabilizes_with_crashes;
          Alcotest.test_case "x variants" `Quick test_lower_x_variants;
          Alcotest.test_case "quiescence" `Quick test_lower_quiescence;
          Alcotest.test_case "dead initial X" `Quick test_lower_all_x_crashed_case;
          Alcotest.test_case "repr readable anytime" `Quick test_lower_repr_readable_anytime;
        ] );
      ( "assembled",
        [
          Alcotest.test_case "admissible pairs" `Quick test_wheels_admissible_pairs;
          Alcotest.test_case "headline z=1" `Quick test_wheels_headline_consensus_power;
          Alcotest.test_case "inadmissible rejected" `Quick test_wheels_inadmissible_rejected;
          Alcotest.test_case "l_moves finite" `Quick test_wheels_lmove_finite;
          Alcotest.test_case "inquiries never stop" `Quick test_wheels_inquiry_never_stops;
          Alcotest.test_case "perfect behaviour" `Quick test_wheels_calm_stabilizes_fast;
          Alcotest.test_case "determinism" `Quick test_wheels_determinism;
          Alcotest.test_case "late crash restabilizes" `Quick test_wheels_restabilize_after_late_crash;
        ] );
      ( "compositions",
        [
          Alcotest.test_case "with kset" `Quick test_wheels_composed_with_kset;
          Alcotest.test_case "◇S_x alone" `Quick test_reduce_es_alone;
          Alcotest.test_case "◇φ_y alone" `Quick test_reduce_phi_alone;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |])) [ qcheck_wheels_random_configs ]);
    ]
